"""Command-line interface: the demo's workflows from a shell.

    python -m repro stats --dataset lubm --universities 2
    python -m repro answer --dataset lubm --query Q9 --strategy ref-gcov
    python -m repro answer --dataset books --sparql "SELECT ?x WHERE {...}"
    python -m repro answer --dataset lubm --query Q5 --engine sqlite
    python -m repro explain --dataset lubm --query Q1
    python -m repro covers --dataset lubm --query Ex1
    python -m repro why --dataset books --triple \
        '<http://example.org/books/doi1> rdf:type <http://example.org/books/Publication>'
    python -m repro load --dataset lubm --wal /tmp/lubm-wal --checkpoint
    python -m repro checkpoint --wal /tmp/lubm-wal
    python -m repro recover --wal /tmp/lubm-wal --verify
    python -m repro serve --dataset lubm --tenants alpha:3 beta:1 --requests 12
    python -m repro replicate --writes 40 --drop-rate 0.2 --dir /tmp/cluster
    python -m repro replstatus --dir /tmp/cluster

Each subcommand maps to one step of the Section 5 demonstration:
``stats`` is step 1, ``answer`` (with ``--strategy all``) is step 2,
``explain``/``covers`` are step 3; ``why`` prints the derivation of an
entailed triple.  ``load --wal`` / ``checkpoint`` / ``recover`` drive
the crash-safe storage layer (DESIGN.md §10); ``serve`` runs a
scripted multi-tenant serving session through the admission-controlled
query service (DESIGN.md §13).

Exit codes (documented in README.md):

====  =======================================================
0     success (``recover``: clean, nothing truncated;
      ``serve``: every submitted request completed)
1     failure (including ``recover --verify`` discrepancies
      and ``serve`` runs where no request completed)
2     usage error (bad flags or flag combinations)
3     partial answer (``federate``: some endpoints degraded;
      ``serve``: some requests shed, failed, or expired)
4     recovered, but a torn/corrupt WAL tail was truncated
5     nothing to recover (no checkpoint, no WAL records)
6     degraded but served (``serve``: every request got an
      answer, but some answers were stale or flagged partial)
7     replication diverged or unconverged (``replicate``: a
      live follower still differs from the primary after the
      catch-up budget)
====  =======================================================
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from .bench import format_table
from .cache import QueryCache
from .core import QueryAnswerer, Strategy
from .datasets import (
    books_dataset,
    example1_best_cover,
    example1_query,
    generate_bib,
    generate_geo,
    generate_lubm,
    lubm_queries,
    bib_queries,
    geo_queries,
)
from .optimizer import gcov
from .query.visualize import render_strategy
from .saturation import explain_triple, format_derivation
from .schema import Schema
from .query import parse_query
from .rdf import load_file, shorten
from .reformulation import ReformulationTooLarge
from .resilience.errors import BudgetExceeded
from .storage import QueryTooLargeError, explain as explain_plan

#: Structured exit codes (mirrored in the README's table).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3
EXIT_RECOVERED_TRUNCATED = 4
EXIT_NOTHING_TO_RECOVER = 5
EXIT_DEGRADED = 6
EXIT_REPLICATION = 7


def _build_graph(args):
    if args.dataset == "lubm":
        return generate_lubm(universities=args.universities, seed=args.seed)
    if args.dataset == "geo":
        return generate_geo(seed=args.seed)
    if args.dataset == "bib":
        return generate_bib(seed=args.seed)
    if args.dataset == "books":
        graph, _, _ = books_dataset()
        return graph
    if args.dataset == "file":
        if not args.file:
            raise SystemExit("--dataset file requires --file PATH")
        if getattr(args, "lenient", False):
            errors = []
            graph = load_file(args.file, strict=False, errors=errors)
            if errors:
                print(
                    "skipped %d unparsable line(s) (first: %s)"
                    % (len(errors), errors[0]),
                    file=sys.stderr,
                )
            return graph
        return load_file(args.file)
    raise SystemExit("unknown dataset %r" % args.dataset)


def _resolve_query(args):
    if args.sparql:
        return parse_query(args.sparql)
    if args.query:
        name = args.query
        if args.dataset == "books":
            _, _, query = books_dataset()
            return query
        if name == "Ex1":
            return example1_query()
        catalog = {
            "lubm": lubm_queries,
            "geo": geo_queries,
            "bib": bib_queries,
        }.get(args.dataset)
        if catalog and name in catalog():
            return catalog()[name]
        raise SystemExit("unknown query %r for dataset %r" % (name, args.dataset))
    if args.dataset == "books":
        _, _, query = books_dataset()
        return query
    raise SystemExit("provide --query NAME or --sparql QUERY")


def cmd_stats(args) -> int:
    answerer = QueryAnswerer(_build_graph(args))
    summary = answerer.store.statistics.summary()
    print(format_table(list(summary), [list(summary.values())],
                       title="dataset statistics"))
    stats = answerer.store.statistics
    rows = [
        [
            shorten(answerer.store.dictionary.decode(property_id)),
            property_stats.triples,
            property_stats.distinct_subjects,
            property_stats.distinct_objects,
        ]
        for property_id, property_stats in sorted(
            stats.per_property.items(), key=lambda item: -item[1].triples
        )[: args.top]
    ]
    print()
    print(format_table(["property", "triples", "#subjects", "#objects"], rows))
    return 0


def _positive_int(value: str) -> int:
    """argparse type for capacities: a clean error beats a traceback."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            "must be a positive integer, got %s" % value
        )
    return number


def _positive_float(value: str) -> float:
    """argparse type for durations: a clean error beats a traceback."""
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(
            "must be a positive number, got %s" % value
        )
    return number


def _rate(value: str) -> float:
    """argparse type for fault probabilities: must lie in [0, 1]."""
    number = float(value)
    if not 0.0 <= number <= 1.0:
        raise argparse.ArgumentTypeError(
            "must be a probability in [0, 1], got %s" % value
        )
    return number


#: Column header of the per-operator metric table (pipelined engine).
_METRIC_HEADER = ["operator", "rows in", "rows out", "batches", "peak buffered", "ms"]


def _print_metrics(execution) -> None:
    """Print the per-operator metrics (pipelined/columnar), when any."""
    metrics = getattr(execution, "metrics", None)
    if metrics is None:
        print("no per-operator metrics "
              "(run with --engine pipelined or columnar)")
        return
    print(format_table(_METRIC_HEADER, metrics.table_rows(),
                       title="per-operator metrics"))
    print("peak buffered rows: %d" % metrics.peak_buffered_rows)


def _make_cache(args):
    """The answer cache the flags ask for, or None when disabled."""
    if not getattr(args, "cache", False):
        return None
    return QueryCache(
        reformulation_capacity=args.cache_size, answer_capacity=args.cache_size
    )


def cmd_answer(args) -> int:
    if args.strategy == Strategy.REF_JUCQ.value:
        print("ref-jucq needs an explicit cover; use the `covers` "
              "subcommand, or ref-gcov for the cost-chosen cover")
        return EXIT_USAGE
    if args.parallelism > 1 and args.engine == "sqlite":
        print("--parallelism needs an in-process engine "
              "(builtin/materialized/pipelined/columnar), not sqlite")
        return EXIT_USAGE
    cache = _make_cache(args)
    answerer = QueryAnswerer(
        _build_graph(args),
        engine=args.engine,
        cache=cache,
        interval_encoding=args.interval_encoding,
    )
    query = _resolve_query(args)
    strategies = (
        list(Strategy)
        if args.strategy == "all"
        else [Strategy(args.strategy)]
    )
    budget_kwargs = {}
    if args.row_budget is not None or args.timeout is not None:
        budget_kwargs = dict(
            row_budget=args.row_budget,
            time_budget=args.timeout,
            budget_fallbacks=args.max_retries,
            allow_partial=args.allow_partial,
        )
    repeat = max(1, args.repeat)
    rows = []
    for strategy in strategies:
        if strategy is Strategy.REF_JUCQ:
            continue  # needs an explicit cover; use `covers`
        if budget_kwargs and strategy is Strategy.DATALOG:
            continue  # no relational evaluation, nothing to budget
        # Datalog evaluates bottom-up, not relationally: nothing fans
        # out, so it keeps the (valid) serial default.
        parallelism = (
            None if strategy is Strategy.DATALOG else args.parallelism
        )
        try:
            reports = [
                answerer.answer(
                    query, strategy, parallelism=parallelism, **budget_kwargs
                )
                for _ in range(repeat)
            ]
            report = reports[-1]
            row = [strategy.value, "%.1f" % (reports[0].elapsed_seconds * 1e3)]
            if repeat > 1:
                row.append("%.1f" % (report.elapsed_seconds * 1e3))
            cardinality = str(report.cardinality)
            if report.details.get("partial"):
                cardinality += " (partial)"
            row.append(cardinality)
            if cache is not None:
                row.append(report.details.get("cache", {}).get("answer", "-"))
            rows.append(row)
            if args.show_answers and len(strategies) == 1:
                for answer_row in sorted(report.answer)[: args.limit]:
                    print("   ", tuple(str(term.lexical()) for term in answer_row))
            if args.show_metrics and len(strategies) == 1:
                interval = report.details.get("interval")
                if interval is not None:
                    print("interval atoms: %d (collapsed %d union branch(es))"
                          % (interval["interval_atoms"],
                             interval["branches_collapsed"]))
                _print_metrics(report.execution)
        except (QueryTooLargeError, ReformulationTooLarge, BudgetExceeded) as exc:
            row = [strategy.value, "FAIL"]
            if repeat > 1:
                row.append("-")
            message = str(exc)[:60]
            partial_rows = getattr(exc, "partial_rows", None)
            if partial_rows is not None:
                message += " [%d partial row(s); --allow-partial keeps them]" % (
                    len(partial_rows),
                )
            row.append(message)
            if cache is not None:
                row.append("-")
            rows.append(row)
    header = ["strategy", "ms"]
    if repeat > 1:
        header.append("warm ms")
    header.append("answers")
    if cache is not None:
        header.append("cache")
    print(format_table(header, rows, title="answers"))
    return 0


def cmd_cache_stats(args) -> int:
    """Answer a query repeatedly through a fresh cache and print the
    warm/cold timings plus the hit/miss/eviction/invalidation counters
    of both tiers — the observability face of the cache subsystem."""
    if args.strategy == Strategy.REF_JUCQ.value:
        print("ref-jucq needs an explicit cover; use the `covers` "
              "subcommand, or ref-gcov for the cost-chosen cover")
        return EXIT_USAGE
    cache = QueryCache(
        reformulation_capacity=args.cache_size, answer_capacity=args.cache_size
    )
    answerer = QueryAnswerer(_build_graph(args), engine=args.engine, cache=cache)
    query = _resolve_query(args)
    strategies = (
        list(Strategy)
        if args.strategy == "all"
        else [Strategy(args.strategy)]
    )
    repeat = max(2, args.repeat)
    rows = []
    for strategy in strategies:
        if strategy is Strategy.REF_JUCQ:
            continue
        try:
            reports = [answerer.answer(query, strategy) for _ in range(repeat)]
        except (QueryTooLargeError, ReformulationTooLarge) as exc:
            rows.append([strategy.value, "FAIL", "-", "-", str(exc)[:40]])
            continue
        cold, warm = reports[0], reports[-1]
        speedup = (
            cold.elapsed_seconds / warm.elapsed_seconds
            if warm.elapsed_seconds > 0
            else float("inf")
        )
        rows.append(
            [
                strategy.value,
                "%.2f" % (cold.elapsed_seconds * 1e3),
                "%.3f" % (warm.elapsed_seconds * 1e3),
                "%.0fx" % speedup,
                cold.cardinality,
            ]
        )
    print(
        format_table(
            ["strategy", "cold ms", "warm ms", "speedup", "answers"],
            rows,
            title="cold vs warm (%d runs)" % repeat,
        )
    )
    print()
    stats = cache.stats()
    tier_rows = [
        [
            tier,
            stats[tier]["hits"],
            stats[tier]["misses"],
            stats[tier]["evictions"],
            stats[tier]["invalidations"],
            "%d/%d" % (stats[tier]["entries"], stats[tier]["capacity"]),
        ]
        for tier in ("reformulation", "answer")
    ]
    print(
        format_table(
            ["tier", "hits", "misses", "evictions", "invalidations", "entries"],
            tier_rows,
            title="cache counters",
        )
    )
    print(
        "\nepochs: data %d (invalidations %d), schema %d (invalidations %d)"
        % (
            stats["data_epoch"],
            stats["data_invalidations"],
            stats["schema_epoch"],
            stats["schema_invalidations"],
        )
    )
    return 0


def cmd_federate(args) -> int:
    """Shard the dataset across N endpoints, answer the query through
    the federated client, and print the answer with its per-endpoint
    completeness report.  Chaos flags (seeded) inject faults so the
    retry/breaker/degradation machinery can be exercised from a shell.
    """
    from .federation import Endpoint, FederatedAnswerer
    from .rdf import Graph
    from .resilience import ExecutionBudget, RetryPolicy
    from .resilience.faults import ChaosEndpoint, FaultPlan

    graph = _build_graph(args)
    query = _resolve_query(args)
    schema = Schema.from_graph(graph)
    shards = [Graph() for _ in range(args.endpoints)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % args.endpoints].add(triple)
    endpoints = [
        Endpoint("shard-%d" % index, shard, result_limit=args.result_limit)
        for index, shard in enumerate(shards)
    ]
    if args.outage is not None and not (0 <= args.outage < args.endpoints):
        raise SystemExit(
            "--outage must name an endpoint index in [0, %d)" % args.endpoints
        )
    chaotic = args.transient_rate > 0 or args.outage is not None
    if chaotic:
        endpoints = [
            ChaosEndpoint(
                endpoint,
                FaultPlan(
                    seed=args.chaos_seed + index,
                    transient_rate=args.transient_rate,
                    outage_after=0 if index == args.outage else None,
                ),
            )
            for index, endpoint in enumerate(endpoints)
        ]
    answerer = FederatedAnswerer(
        endpoints,
        schema,
        retry_policy=RetryPolicy(
            max_attempts=args.max_retries + 1, seed=args.chaos_seed
        ),
        request_deadline=args.timeout,
        breaker_threshold=args.breaker_threshold,
        parallelism=args.parallelism,
    )
    budget = (
        ExecutionBudget(max_rows=args.row_budget)
        if args.row_budget is not None
        else None
    )
    try:
        result = answerer.answer(query, budget=budget)
    except BudgetExceeded as exc:
        print("budget exceeded: %s" % exc)
        return EXIT_FAILURE
    print(
        "%d answer row(s) over %d endpoint(s), %d request(s), "
        "%d row(s) transferred"
        % (result.cardinality, args.endpoints, result.requests,
           result.rows_transferred)
    )
    if args.show_answers:
        for answer_row in sorted(result.rows)[: args.limit]:
            print("   ", tuple(str(term.lexical()) for term in answer_row))
    print()
    print(result.report.summary())
    return EXIT_OK if result.complete else EXIT_PARTIAL


def cmd_explain(args) -> int:
    answerer = QueryAnswerer(
        _build_graph(args),
        engine=args.engine,
        interval_encoding=args.interval_encoding,
    )
    query = _resolve_query(args)
    report = answerer.answer(query, Strategy(args.strategy))
    if report.execution is None:
        print("strategy %s has no relational plan" % args.strategy)
        return EXIT_FAILURE
    interval = report.details.get("interval")
    if interval is not None:
        print("interval atoms: %d (collapsed %d union branch(es))"
              % (interval["interval_atoms"], interval["branches_collapsed"]))
    print(explain_plan(report.execution.plan, answerer.store))
    if report.execution.metrics is not None:
        print()
        _print_metrics(report.execution)
    return 0


def cmd_covers(args) -> int:
    answerer = QueryAnswerer(_build_graph(args))
    query = _resolve_query(args)
    search = gcov(query, answerer.schema, answerer.store, answerer.backend)
    print(render_strategy(search.cover))
    print()
    print("GCov chose %r (estimated cost %.1f) after exploring %d covers"
          % (search.cover, search.cost, search.explored_count))
    ranked = sorted(search.explored, key=lambda pair: pair[1])[: args.top]
    print(format_table(
        ["cover", "estimated cost"],
        [[repr(cover), "%.1f" % cost] for cover, cost in ranked],
        title="cheapest explored covers",
    ))
    if args.dataset == "lubm" and args.query == "Ex1":
        paper = example1_best_cover(query)
        print("\npaper's cover: %r" % paper)
    return 0


def cmd_why(args) -> int:
    from .rdf.io import parse_line

    graph = _build_graph(args)
    triple_text = args.triple
    # Accept prefixed rdf:/rdfs: names for convenience.
    triple_text = triple_text.replace(
        "rdf:type", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
    ).replace(
        "rdfs:subClassOf",
        "<http://www.w3.org/2000/01/rdf-schema#subClassOf>",
    ).replace(
        "rdfs:subPropertyOf",
        "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>",
    )
    triple = parse_line(triple_text + " .")
    derivation = explain_triple(triple, graph, Schema.from_graph(graph))
    if derivation is None:
        print("not entailed: %r" % (triple,))
        return EXIT_FAILURE
    print(format_derivation(derivation))
    return 0


def cmd_load(args) -> int:
    """Load a dataset into a crash-safe store: every triple and
    constraint becomes one WAL record under ``--wal DIR``."""
    from .durability import DurableStore

    graph = _build_graph(args)
    durable = DurableStore.open(
        args.wal, sync=args.sync, with_saturator=args.saturate
    )
    records = durable.load(graph)
    line = "loaded %d record(s) into %s (segment %d, %d triple(s) stored)" % (
        records, args.wal, durable.segment, durable.store.triple_count)
    if args.checkpoint:
        path = durable.checkpoint()
        line += "; checkpoint %s" % path
    durable.close()
    print(line)
    return EXIT_OK


def cmd_checkpoint(args) -> int:
    """Snapshot the durable state under ``--wal DIR`` atomically and
    rotate the WAL, so the next recovery replays only new records."""
    from .durability import DurableStore

    durable = DurableStore.open(args.wal, with_saturator=args.saturate)
    if durable.recovery.empty:
        print("nothing to checkpoint: %s holds no durable state" % args.wal)
        return EXIT_NOTHING_TO_RECOVER
    path = durable.checkpoint()
    durable.close()
    print(
        "checkpoint %s (%d triple(s), WAL rotated to segment %d)"
        % (path, durable.store.triple_count, durable.segment)
    )
    return EXIT_OK


def cmd_recover(args) -> int:
    """Recover the store under ``--wal DIR`` and report what happened.

    Exit codes: 0 clean recovery, 4 recovered after truncating a
    torn/corrupt WAL tail, 5 nothing to recover, 1 ``--verify`` found
    discrepancies.
    """
    import json

    from .durability import recover, verify_recovery

    result = recover(
        args.wal,
        with_saturator=args.saturate,
        truncate=not args.read_only,
    )
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        width = max(len(key) for key in summary)
        for key, value in summary.items():
            print("%-*s  %s" % (width, key, value))
    if result.empty:
        return EXIT_NOTHING_TO_RECOVER
    if args.verify:
        problems = verify_recovery(result)
        if problems:
            for problem in problems:
                print("VERIFY FAILED: %s" % problem, file=sys.stderr)
            return EXIT_FAILURE
        print("verified: recovered state matches a fresh rebuild")
    return EXIT_RECOVERED_TRUNCATED if result.truncated else EXIT_OK


def _catalog_query(args, name: str):
    """Resolve a catalog query *name* for the selected dataset."""
    if args.dataset == "books" or name == "default":
        _, _, query = books_dataset()
        return query
    if name == "Ex1":
        return example1_query()
    catalog = {
        "lubm": lubm_queries,
        "geo": geo_queries,
        "bib": bib_queries,
    }.get(args.dataset)
    if catalog and name in catalog():
        return catalog()[name]
    raise SystemExit("unknown query %r for dataset %r" % (name, args.dataset))


def _parse_serve_script(lines):
    """Parse a ``serve --script`` file into (verb, payload) commands.

    Grammar (``#`` comments and blank lines ignored)::

        submit TENANT QUERY [priority=P] [deadline=S] [strategy=NAME]
               [snapshot=PIN]
        step [N]
        drain
        pin NAME
        release NAME
        insert SUBJECT PREDICATE OBJECT   (N-Triples terms; rdf:/rdfs: ok)
        advance SECONDS
        chaos arm|disarm                  (toggle --chaos-* fault injection)
        degrade LEVEL                     (force the brownout ladder, e.g.
                                           ``degrade stale-serving``)
    """
    commands = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        verb = parts[0]
        try:
            if verb == "submit":
                tenant, name = parts[1], parts[2]
                options = dict(part.split("=", 1) for part in parts[3:])
                commands.append(("submit", (tenant, name, options)))
            elif verb == "step":
                commands.append(("step", int(parts[1]) if len(parts) > 1 else 1))
            elif verb == "drain":
                commands.append(("drain", None))
            elif verb in ("pin", "release"):
                commands.append((verb, parts[1]))
            elif verb == "insert":
                commands.append(("insert", " ".join(parts[1:])))
            elif verb == "advance":
                commands.append(("advance", float(parts[1])))
            elif verb == "chaos":
                if parts[1] not in ("arm", "disarm"):
                    raise ValueError("chaos takes arm|disarm, got %r" % parts[1])
                commands.append(("chaos", parts[1]))
            elif verb == "degrade":
                commands.append(("degrade", parts[1]))
            else:
                raise ValueError("unknown verb %r" % verb)
        except (IndexError, ValueError) as exc:
            raise SystemExit("serve script line %d: %s" % (lineno, exc))
    return commands


def _expand_rdf_prefixes(text: str) -> str:
    """The same rdf:/rdfs: convenience expansion ``why`` accepts."""
    return (
        text.replace(
            "rdf:type", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
        )
        .replace(
            "rdfs:subClassOf",
            "<http://www.w3.org/2000/01/rdf-schema#subClassOf>",
        )
        .replace(
            "rdfs:subPropertyOf",
            "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>",
        )
    )


def cmd_serve(args) -> int:
    """Run a scripted multi-tenant serving session and report per-tenant
    outcomes.  Deterministic by construction: requests execute on a
    stepped fake clock (one tick per event), so the same script, seed,
    and flags always produce the same admission decisions, schedule,
    and exit code.

    Exit codes: 0 every submitted request completed fresh, 6 every
    request was answered but some answers were stale or flagged
    partial (degraded-but-served), 3 some requests were shed / failed
    / expired, 1 no request completed at all.
    """
    import json as json_module

    from .rdf.io import parse_line
    from .resilience.clock import FakeClock
    from .resilience.faults import FaultPlan
    from .service import (
        AdmissionRejected,
        LEVEL_NAMES,
        QueryRequest,
        QueryService,
        ServiceChaos,
        TenantConfig,
    )

    try:
        tenants = [TenantConfig.parse(spec) for spec in args.tenants]
    except ValueError as exc:
        print("bad --tenants spec: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    for tenant in tenants:
        if args.queue_depth is not None:
            tenant.queue_depth = args.queue_depth
        tenant.request_rows = args.row_budget
        tenant.request_seconds = args.timeout
    clock = FakeClock(auto_advance=args.tick)
    chaos = None
    if args.chaos_transient or args.chaos_latency_rate:
        # A script drives its own fault window via ``chaos arm`` /
        # ``chaos disarm``; synthetic workloads inject from the start.
        chaos = ServiceChaos(
            FaultPlan(
                seed=args.chaos_seed,
                transient_rate=args.chaos_transient,
                latency_rate=args.chaos_latency_rate,
                latency_seconds=args.chaos_latency_seconds,
            ),
            clock=clock,
            armed=not args.script,
        )
    service = QueryService(
        _build_graph(args),
        tenants=tenants,
        engine=args.engine,
        capacity=args.capacity,
        clock=clock,
        brownout=True if args.brownout else None,
        chaos=chaos,
        watchdog_seconds=args.watchdog,
        breaker_threshold=args.breaker_threshold,
    )
    if args.script:
        with open(args.script) as handle:
            commands = _parse_serve_script(handle)
    else:
        # Synthetic closed workload: --requests submissions round-robin
        # over tenants × catalog queries, then drain.
        names = args.queries.split(",") if args.queries else ["default"]
        commands = [
            (
                "submit",
                (
                    tenants[index % len(tenants)].name,
                    names[index % len(names)],
                    {},
                ),
            )
            for index in range(args.requests)
        ]
        commands.append(("drain", None))
    pins = {}
    tickets = []
    rejections = []
    for verb, payload in commands:
        if verb == "submit":
            tenant, name, options = payload
            strategy = Strategy(options.get("strategy", Strategy.REF_GCOV.value))
            snapshot = None
            if "snapshot" in options:
                snapshot = pins.get(options["snapshot"])
                if snapshot is None:
                    print("serve script: unknown pin %r" % options["snapshot"],
                          file=sys.stderr)
                    return EXIT_USAGE
            request = QueryRequest(
                tenant,
                _catalog_query(args, name),
                strategy=strategy,
                priority=int(options.get("priority", 0)),
                deadline=(
                    float(options["deadline"]) if "deadline" in options else None
                ),
                snapshot=snapshot,
            )
            try:
                tickets.append(service.submit(request))
            except AdmissionRejected as exc:
                rejections.append(dict(exc.diagnostics(), query=name))
                if not args.json:  # JSON mode carries them in "rejections"
                    hints = []
                    if exc.retry_after is not None:
                        hints.append("retry after %.3fs" % exc.retry_after)
                    if exc.cooldown_remaining is not None:
                        hints.append(
                            "breaker cools in %.3fs" % exc.cooldown_remaining)
                    hint = " (%s)" % "; ".join(hints) if hints else ""
                    print(
                        "shed %s/%s: %s%s — %s"
                        % (tenant, name, exc.reason, hint, exc)
                    )
        elif verb == "step":
            for _ in range(payload):
                service.step()
        elif verb == "drain":
            service.drain()
        elif verb == "pin":
            pins[payload] = service.pin()
        elif verb == "release":
            snapshot = pins.pop(payload, None)
            if snapshot is not None:
                service.release(snapshot)
        elif verb == "insert":
            service.insert(parse_line(_expand_rdf_prefixes(payload) + " ."))
        elif verb == "advance":
            clock.advance(payload)
        elif verb == "chaos":
            if chaos is None:
                print("serve script: 'chaos %s' without --chaos-* flags"
                      % payload, file=sys.stderr)
                return EXIT_USAGE
            chaos.arm() if payload == "arm" else chaos.disarm()
        elif verb == "degrade":
            if service.brownout is None:
                print("serve script: 'degrade' requires --brownout",
                      file=sys.stderr)
                return EXIT_USAGE
            if payload not in LEVEL_NAMES:
                print("serve script: unknown level %r (one of %s)"
                      % (payload, ", ".join(LEVEL_NAMES)), file=sys.stderr)
                return EXIT_USAGE
            service.brownout.force(LEVEL_NAMES.index(payload), "script")
    service.drain()
    summary = service.describe()
    summary["rejections"] = rejections
    if args.json:
        print(json_module.dumps(summary, indent=2, sort_keys=True))
    else:
        # Per-tenant back-off hint: the largest retry-after / breaker
        # cooldown among this tenant's rejections, so exit-3/exit-6
        # sessions tell clients when to come back.
        backoff = {}
        for rejection in rejections:
            wait = max(rejection.get("retry_after", 0.0),
                       rejection.get("cooldown_remaining", 0.0))
            if wait > 0:
                backoff[rejection["tenant"]] = max(
                    backoff.get(rejection["tenant"], 0.0), wait)
        rows = [
            [
                name,
                bucket["submitted"],
                bucket["completed"],
                bucket["failed"],
                bucket["expired"],
                bucket["shed_total"],
                "%d/%d" % (bucket["cache_hits"], bucket["cache_misses"]),
                bucket["stale_serves"],
                bucket["degraded"],
                "%.1f" % (bucket["latency"]["p50"] * 1e3),
                "%.1f" % (bucket["latency"]["p95"] * 1e3),
                ("%.3f" % backoff[name]) if name in backoff else "-",
            ]
            for name, bucket in summary["tenants"].items()
        ]
        print(
            format_table(
                ["tenant", "sub", "done", "fail", "exp", "shed",
                 "hit/miss", "stale", "degr", "p50 ms", "p95 ms",
                 "backoff s"],
                rows,
                title="serving session (%s, capacity %d)"
                % (args.engine, args.capacity),
            )
        )
        print(
            "\n%d submitted, %d completed, %d shed (rate %.2f), "
            "%d failed, %d expired; snapshots: %d pin(s), %d frozen cop%s"
            % (
                summary["submitted"],
                summary["completed"],
                summary["shed"],
                summary["shed_rate"],
                summary["failed"],
                summary["expired"],
                summary["snapshots"]["active_pins"],
                summary["snapshots"]["frozen_copies"],
                "y" if summary["snapshots"]["frozen_copies"] == 1 else "ies",
            )
        )
        health = summary["health"]
        monitor = health["monitor"]
        level = (
            health["brownout"]["level_name"]
            if "brownout" in health
            else "normal (no brownout)"
        )
        open_breakers = monitor["open_breakers"]
        print(
            "health: level %s; %d stale serve(s), %d degraded answer(s), "
            "%d/%d refresh(es) failed; breakers open: %s"
            % (
                level,
                monitor["stale_serves"],
                monitor["degraded_answers"],
                monitor["refresh_failures"],
                monitor["refreshes"],
                ", ".join(open_breakers) if open_breakers else "none",
            )
        )
    if summary["completed"] == 0:
        return EXIT_FAILURE
    if summary["shed"] or summary["failed"] or summary["expired"]:
        return EXIT_PARTIAL
    if summary["stale_serves"] or summary["degraded"]:
        return EXIT_DEGRADED
    return EXIT_OK


def _parse_repl_script(lines):
    """Parse a ``replicate --script`` file into (verb, payload) commands.

    Grammar (``#`` comments and blank lines ignored)::

        write [N]          insert N fresh triples on the primary
        pump [N]           advance N replication rounds
        kill NAME          crash a node (primary or follower)
        kill-primary       crash whichever node is primary right now
        restart NAME       restart a crashed node
        partition NAME     cut a node off (it stays alive)
        heal [NAME]        mend partitions / restart the dead — one
                           node, or the whole cluster when omitted
        converge [MAX]     pump until consistent (budget MAX rounds)
    """
    commands = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        verb = parts[0]
        try:
            if verb in ("write", "pump"):
                commands.append(
                    (verb, int(parts[1]) if len(parts) > 1 else 1))
            elif verb in ("kill", "restart", "partition"):
                commands.append((verb, parts[1]))
            elif verb == "kill-primary":
                commands.append(("kill-primary", None))
            elif verb == "heal":
                commands.append(("heal", parts[1] if len(parts) > 1 else None))
            elif verb == "converge":
                commands.append(
                    ("converge", int(parts[1]) if len(parts) > 1 else 200))
            else:
                raise ValueError("unknown verb %r" % verb)
        except (IndexError, ValueError) as exc:
            raise SystemExit("replicate script line %d: %s" % (lineno, exc))
    return commands


def cmd_replicate(args) -> int:
    """Run a scripted WAL-shipping replication session and report the
    cluster's final state.  Deterministic: the cluster runs on an
    injected fake clock and every link fault comes from a seeded plan,
    so the same flags and script always yield the same epochs, reseed
    log, and exit code.

    Exit codes: 0 the cluster converged (every live follower
    byte-identical to the primary), 7 a live follower still diverges
    after the catch-up budget, 2 usage errors.
    """
    import json as json_module
    import shutil
    import tempfile

    from .rdf import Namespace, RDF_TYPE, Triple
    from .replication import ReplicationCluster

    names = ["n%d" % (i + 1) for i in range(args.nodes)]
    faults = {}
    if args.drop_rate:
        faults["drop_rate"] = args.drop_rate
    if args.duplicate_rate:
        faults["duplicate_rate"] = args.duplicate_rate
    if args.delay_rate:
        faults["delay_rate"] = args.delay_rate
        faults["delay_rounds"] = args.delay_rounds
    if args.tear_rate:
        faults["tear_rate"] = args.tear_rate
    if args.script:
        with open(args.script) as handle:
            commands = _parse_repl_script(handle)
    else:
        commands = [("write", args.writes), ("converge", args.max_rounds)]
    directory = args.dir or tempfile.mkdtemp(prefix="repro-replicate-")
    keep = args.dir is not None
    ex = Namespace("http://example.org/replicate/")
    written = 0
    try:
        cluster = ReplicationCluster(
            directory, names, seed=args.seed, link_faults=faults or None,
            lease_seconds=args.lease, link_capacity=args.link_capacity,
            retain=args.retain,
        )
    except (TypeError, ValueError) as exc:
        print("bad replicate flags: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    try:
        spent = 0
        for verb, payload in commands:
            if verb == "write":
                for _ in range(payload):
                    cluster.primary_node.insert(
                        Triple(ex["s%d" % written], RDF_TYPE, ex.Entity))
                    written += 1
                    cluster.pump(1)
            elif verb == "pump":
                cluster.pump(payload)
            elif verb == "kill":
                cluster.kill(payload)
            elif verb == "kill-primary":
                cluster.kill_primary()
            elif verb == "restart":
                cluster.restart(payload)
            elif verb == "partition":
                cluster.partition(payload)
            elif verb == "heal":
                cluster.heal(payload)
            elif verb == "converge":
                spent += cluster.pump_until_converged(max_rounds=payload)
        # Always close with a convergence attempt so the exit code
        # reflects the healed steady state, not mid-chaos lag.
        spent += cluster.pump_until_converged(max_rounds=args.max_rounds)
        status = cluster.status()
        status["writes"] = written
        status["converge_rounds"] = spent
        if keep:
            with open(os.path.join(directory, "replstatus.json"), "w") as out:
                json_module.dump(status, out, indent=2, sort_keys=True)
        if args.json:
            print(json_module.dumps(status, indent=2, sort_keys=True))
        else:
            primary_lsn = status["nodes"][status["primary"]]["lsn"]
            rows = [
                [
                    name,
                    state["role"],
                    "up" if state["alive"] else "down",
                    state["repl_epoch"],
                    state["lsn"] if state["lsn"] is not None else "-",
                    state.get("lag", "-"),
                    state["applied"],
                    state["dups_skipped"],
                    state["resyncs"],
                    state["reseeds"],
                ]
                for name, state in sorted(status["nodes"].items())
            ]
            print(
                format_table(
                    ["node", "role", "state", "epoch", "lsn", "lag",
                     "applied", "dups", "resyncs", "reseeds"],
                    rows,
                    title="replication session (%d writes, %d rounds, "
                    "primary %s at lsn %s)"
                    % (written, status["rounds"], status["primary"],
                       primary_lsn),
                )
            )
            for name, link in sorted(status["links"].items()):
                print(
                    "link %s: shipped %d, delivered %d, dropped %d, "
                    "duplicated %d, delayed %d, torn %d"
                    % (name, link["shipped"], link["delivered"],
                       link["dropped"], link["duplicated"], link["delayed"],
                       link["torn"])
                )
            print(
                "epoch %d after %d election(s); %d reseed(s), "
                "%d divergence(s) detected"
                % (status["coordinator"]["epoch"],
                   status["coordinator"]["elections"],
                   len(status["reseeds"]), status["divergences"])
            )
            for problem in status["consistency_problems"]:
                print("UNCONVERGED: %s" % problem, file=sys.stderr)
        return (EXIT_REPLICATION if status["consistency_problems"]
                else EXIT_OK)
    finally:
        cluster.close()
        if not keep:
            shutil.rmtree(directory, ignore_errors=True)


def cmd_replstatus(args) -> int:
    """Dump per-replica LSN lag, epochs, and link fault counters as
    JSON.  Reads the ``replstatus.json`` a ``replicate --dir`` session
    left behind; without one, reopens the node directories and reports
    the durable facts (role, epoch, LSN) with lags recomputed against
    the highest LSN on disk.
    """
    import json as json_module

    from .replication import ReplicaNode

    saved = os.path.join(args.dir, "replstatus.json")
    if os.path.exists(saved):
        with open(saved) as handle:
            print(json_module.dumps(json_module.load(handle), indent=2,
                                    sort_keys=True))
        return EXIT_OK
    nodes = {}
    for name in sorted(os.listdir(args.dir)) if os.path.isdir(args.dir) else []:
        path = os.path.join(args.dir, name)
        if not os.path.isdir(path):
            continue
        node = ReplicaNode(name, path)
        try:
            nodes[name] = node.status()
        finally:
            node.durable.close()
    if not nodes:
        print("no replica state under %r" % args.dir, file=sys.stderr)
        return EXIT_FAILURE
    top = max(state["lsn"] for state in nodes.values())
    for state in nodes.values():
        state["lag"] = top - state["lsn"]
    print(json_module.dumps({"nodes": nodes}, indent=2, sort_keys=True))
    return EXIT_OK


def cmd_experiments(args) -> int:
    from .bench import EXPERIMENTS, format_table

    if args.run:
        wanted = None if args.run == "quick" else set(args.run.split(","))
        for experiment in EXPERIMENTS:
            if experiment.quick is None:
                continue
            if wanted is not None and experiment.identifier not in wanted:
                continue
            print("== %s: %s" % (experiment.identifier, experiment.claim))
            print(experiment.quick())
            print()
        return 0
    rows = [
        [experiment.identifier, experiment.claim, experiment.bench_file]
        for experiment in EXPERIMENTS
    ]
    print(format_table(["id", "reproduces", "bench target"], rows,
                       title="experiment index (DESIGN.md §4)"))
    print("\nrun the full suite:  pytest benchmarks/ -s")
    print("quick subset:        python -m repro experiments --run quick")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reformulation-based RDF query answering (VLDB 2015 demo reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("--dataset", default="lubm",
                         choices=["lubm", "geo", "bib", "books", "file"])
        sub.add_argument("--file", help="N-Triples file (with --dataset file)")
        sub.add_argument("--universities", type=int, default=1)
        sub.add_argument("--seed", type=int, default=42)

    stats = subparsers.add_parser("stats", help="dataset statistics (demo step 1)")
    add_common(stats)
    stats.add_argument("--top", type=int, default=10)
    stats.set_defaults(func=cmd_stats)

    answer = subparsers.add_parser("answer", help="answer a query (demo step 2)")
    add_common(answer)
    answer.add_argument("--query", help="a catalog query name (Q1..Q14, Ex1, G1.., B1..)")
    answer.add_argument("--sparql", help="an inline SPARQL-lite query")
    answer.add_argument("--strategy", default="all",
                        choices=["all"] + [s.value for s in Strategy])
    answer.add_argument("--show-answers", action="store_true")
    answer.add_argument("--limit", type=int, default=20)
    answer.add_argument("--engine", default="builtin",
                        choices=["builtin", "materialized", "pipelined",
                                 "columnar", "sqlite"],
                        help="evaluation engine: materialized (builtin is "
                             "its alias), pipelined (streaming batches, "
                             "per-operator metrics), columnar (vectorized "
                             "sorted-run execution), or sqlite")
    answer.add_argument("--show-metrics", action="store_true",
                        help="print the per-operator metric table (single "
                             "strategy, pipelined/columnar engine)")
    answer.add_argument("--interval-encoding", action="store_true",
                        help="hierarchy-aware dictionary encoding: covered "
                             "subclass/subproperty unions collapse into "
                             "range-scanned interval atoms")
    answer.add_argument("--allow-partial", action="store_true",
                        help="on budget overrun, keep the rows produced so "
                             "far as a degraded answer (pipelined/columnar "
                             "engine)")
    answer.add_argument("--cache", action="store_true",
                        help="answer through a reformulation+answer cache "
                             "(see `cache-stats` for its counters)")
    answer.add_argument("--cache-size", type=_positive_int, default=1024,
                        help="LRU capacity per cache tier (default 1024)")
    answer.add_argument("--repeat", type=int, default=1,
                        help="answer N times (with --cache the repeats hit "
                             "the cache; a warm-ms column is shown)")
    answer.add_argument("--timeout", type=_positive_float, default=None,
                        help="evaluation time budget in seconds; overruns "
                             "fail cleanly instead of hanging")
    answer.add_argument("--row-budget", type=_positive_int, default=None,
                        help="cap on cumulative intermediate rows during "
                             "evaluation (in-process engines)")
    answer.add_argument("--parallelism", type=_positive_int, default=1,
                        help="worker threads for fragment/disjunct "
                             "evaluation (1 = serial; in-process "
                             "engines only)")
    answer.add_argument("--max-retries", type=_positive_int, default=3,
                        help="budget-exceeded fallback attempts: how many "
                             "next-best covers the optimizer may try "
                             "(default 3)")
    answer.set_defaults(func=cmd_answer)

    federate = subparsers.add_parser(
        "federate",
        help="answer over the dataset sharded across N endpoints, with "
             "optional injected faults and a completeness report",
    )
    add_common(federate)
    federate.add_argument("--query", help="a catalog query name")
    federate.add_argument("--sparql", help="an inline SPARQL-lite query")
    federate.add_argument("--endpoints", type=_positive_int, default=3,
                          help="number of shards/endpoints (default 3)")
    federate.add_argument("--result-limit", type=_positive_int, default=None,
                          help="per-endpoint answer truncation limit")
    federate.add_argument("--timeout", type=_positive_float, default=None,
                          help="per-request deadline in seconds (retries "
                               "included)")
    federate.add_argument("--max-retries", type=_positive_int, default=2,
                          help="retry attempts after a transient endpoint "
                               "failure (default 2)")
    federate.add_argument("--parallelism", type=_positive_int, default=1,
                          help="worker threads for per-endpoint "
                               "fan-out (1 = serial)")
    federate.add_argument("--row-budget", type=_positive_int, default=None,
                          help="cap on rows materialized by the client-side "
                               "joins")
    federate.add_argument("--breaker-threshold", type=_positive_int,
                          default=None,
                          help="consecutive failures that open an "
                               "endpoint's circuit breaker")
    federate.add_argument("--chaos-seed", type=int, default=0,
                          help="seed for the injected fault schedule")
    federate.add_argument("--transient-rate", type=_rate, default=0.0,
                          help="probability a request fails transiently")
    federate.add_argument("--outage", type=int, default=None,
                          help="index of an endpoint that is permanently "
                               "down")
    federate.add_argument("--show-answers", action="store_true")
    federate.add_argument("--limit", type=int, default=20)
    federate.set_defaults(func=cmd_federate)

    cache_stats = subparsers.add_parser(
        "cache-stats",
        help="cold vs warm answering through the cache, with counters",
    )
    add_common(cache_stats)
    cache_stats.add_argument("--query", help="a catalog query name")
    cache_stats.add_argument("--sparql", help="an inline SPARQL-lite query")
    cache_stats.add_argument("--strategy", default="all",
                             choices=["all"] + [s.value for s in Strategy])
    cache_stats.add_argument("--engine", default="builtin",
                             choices=["builtin", "materialized", "pipelined",
                                      "columnar", "sqlite"])
    cache_stats.add_argument("--cache-size", type=_positive_int, default=1024,
                             help="LRU capacity per cache tier (default 1024)")
    cache_stats.add_argument("--repeat", type=int, default=3,
                             help="runs per strategy (first is cold; default 3)")
    cache_stats.set_defaults(func=cmd_cache_stats)

    explain = subparsers.add_parser("explain", help="show a plan (demo step 3)")
    add_common(explain)
    explain.add_argument("--query")
    explain.add_argument("--sparql")
    explain.add_argument("--strategy", default="ref-gcov",
                         choices=[s.value for s in Strategy])
    explain.add_argument("--engine", default="builtin",
                         choices=["builtin", "materialized", "pipelined",
                                  "columnar"],
                         help="evaluation engine; pipelined and columnar "
                              "append the per-operator metric table to "
                              "the plan")
    explain.add_argument("--interval-encoding", action="store_true",
                         help="hierarchy-aware dictionary encoding: interval "
                              "atoms appear in the plan as range scans with "
                              "their collapsed branch counts")
    explain.set_defaults(func=cmd_explain)

    covers = subparsers.add_parser("covers", help="explore covers (demo step 3)")
    add_common(covers)
    covers.add_argument("--query")
    covers.add_argument("--sparql")
    covers.add_argument("--top", type=int, default=8)
    covers.set_defaults(func=cmd_covers)

    why = subparsers.add_parser(
        "why", help="explain how a triple is entailed"
    )
    add_common(why)
    why.add_argument("--triple", required=True,
                     help="the triple, N-Triples style (rdf:/rdfs: allowed)")
    why.set_defaults(func=cmd_why)

    load = subparsers.add_parser(
        "load", help="load a dataset into a crash-safe WAL-backed store"
    )
    add_common(load)
    load.add_argument("--wal", required=True,
                      help="durability directory (WAL segments + checkpoints)")
    load.add_argument("--sync", default="always", choices=["always", "never"],
                      help="fsync every WAL record (always) or only on "
                           "checkpoints (never); default always")
    load.add_argument("--saturate", action="store_true",
                      help="maintain incremental saturation state durably")
    load.add_argument("--checkpoint", action="store_true",
                      help="write a checkpoint after loading")
    load.add_argument("--lenient", action="store_true",
                      help="with --dataset file: skip unparsable N-Triples "
                           "lines instead of failing")
    load.set_defaults(func=cmd_load)

    checkpoint = subparsers.add_parser(
        "checkpoint", help="snapshot a durable store and rotate its WAL"
    )
    checkpoint.add_argument("--wal", required=True,
                            help="durability directory")
    checkpoint.add_argument("--saturate", action="store_true",
                            help="carry incremental saturation state in the "
                                 "checkpoint")
    checkpoint.set_defaults(func=cmd_checkpoint)

    recover_cmd = subparsers.add_parser(
        "recover",
        help="recover a durable store (exit 0 clean / 4 truncated tail / "
             "5 nothing to recover)",
    )
    recover_cmd.add_argument("--wal", required=True,
                             help="durability directory")
    recover_cmd.add_argument("--verify", action="store_true",
                             help="cross-check the recovered store against a "
                                  "fresh rebuild (exit 1 on discrepancies)")
    recover_cmd.add_argument("--json", action="store_true",
                             help="print the recovery report as JSON")
    recover_cmd.add_argument("--read-only", action="store_true",
                             help="inspect only: leave torn WAL tails on disk")
    recover_cmd.add_argument("--saturate", action="store_true",
                             help="rebuild incremental saturation state too")
    recover_cmd.set_defaults(func=cmd_recover)

    serve = subparsers.add_parser(
        "serve",
        help="run a scripted multi-tenant serving session (exit 0 all "
             "completed fresh / 6 served but some stale or partial / 3 "
             "some shed, failed or expired / 1 none completed)",
    )
    add_common(serve)
    serve.add_argument("--tenants", nargs="+", default=["alpha:2", "beta:1"],
                       metavar="NAME[:WEIGHT[:DEPTH[:MAXLAG]]]",
                       help="tenant specs: scheduling weight, queue depth, "
                            "and replica staleness bound in LSNs "
                            "(default alpha:2 beta:1)")
    serve.add_argument("--script",
                       help="serving script (submit/step/drain/pin/release/"
                            "insert/advance lines); omit for a synthetic "
                            "round-robin workload")
    serve.add_argument("--requests", type=_positive_int, default=8,
                       help="synthetic workload size without --script "
                            "(default 8)")
    serve.add_argument("--queries", default=None,
                       help="comma-separated catalog query names for the "
                            "synthetic workload (default: the dataset's "
                            "default query)")
    serve.add_argument("--capacity", type=_positive_int, default=2,
                       help="requests executed per scheduling round "
                            "(default 2)")
    serve.add_argument("--queue-depth", type=_positive_int, default=None,
                       help="override every tenant's queue depth")
    serve.add_argument("--engine", default="builtin",
                       choices=["builtin", "materialized", "pipelined",
                                "columnar", "sqlite"])
    serve.add_argument("--row-budget", type=_positive_int, default=None,
                       help="per-request row budget charged to the "
                            "submitting tenant")
    serve.add_argument("--timeout", type=_positive_float, default=None,
                       help="per-request time budget in seconds")
    serve.add_argument("--tick", type=_positive_float, default=0.001,
                       help="fake-clock advance per event (default 1 ms; "
                            "the session clock is deterministic)")
    serve.add_argument("--json", action="store_true",
                       help="print the full service metrics as JSON")
    serve.add_argument("--brownout", action="store_true",
                       help="enable the degradation ladder (drop parallelism "
                            "→ partial answers → stale-serving → shed) with "
                            "the default policy")
    serve.add_argument("--watchdog", type=_positive_float, default=None,
                       metavar="SECONDS",
                       help="hard wall-clock ceiling per execution, enforced "
                            "through the sibling-abort budget machinery")
    serve.add_argument("--breaker-threshold", type=_positive_int, default=None,
                       help="consecutive failures before a tenant's circuit "
                            "breaker opens (default 5 with --brownout; "
                            "omit both to disable)")
    serve.add_argument("--chaos-seed", type=int,
                       default=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
                       help="fault-plan seed for --chaos-* injection "
                            "(default $REPRO_CHAOS_SEED or 0)")
    serve.add_argument("--chaos-transient", type=float, default=0.0,
                       metavar="RATE",
                       help="probability an execution fails with an injected "
                            "transient fault")
    serve.add_argument("--chaos-latency-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="probability an execution sleeps an injected "
                            "delay first")
    serve.add_argument("--chaos-latency-seconds", type=_positive_float,
                       default=0.05, metavar="SECONDS",
                       help="size of the injected delay (default 0.05)")
    serve.set_defaults(func=cmd_serve)

    replicate = subparsers.add_parser(
        "replicate",
        help="run a scripted WAL-shipping replication session (exit 0 "
             "converged / 7 a live follower still diverges from the "
             "primary after the catch-up budget)",
    )
    replicate.add_argument("--nodes", type=_positive_int, default=3,
                           help="cluster size; the first node starts as "
                                "primary (default 3)")
    replicate.add_argument("--writes", type=_positive_int, default=24,
                           help="synthetic primary writes without --script "
                                "(default 24)")
    replicate.add_argument("--script",
                           help="chaos script (write/pump/kill/kill-primary/"
                                "restart/partition/heal/converge lines); "
                                "omit for writes + converge")
    replicate.add_argument("--seed", type=int,
                           default=int(os.environ.get("REPRO_CHAOS_SEED",
                                                      "0")),
                           help="link fault-plan seed (default "
                                "$REPRO_CHAOS_SEED or 0)")
    replicate.add_argument("--drop-rate", type=float, default=0.0,
                           metavar="RATE",
                           help="probability a shipped frame is dropped")
    replicate.add_argument("--duplicate-rate", type=float, default=0.0,
                           metavar="RATE",
                           help="probability a shipped frame arrives twice")
    replicate.add_argument("--delay-rate", type=float, default=0.0,
                           metavar="RATE",
                           help="probability a shipped frame is reordered "
                                "behind later traffic")
    replicate.add_argument("--delay-rounds", type=_positive_int, default=2,
                           help="rounds a delayed frame is held (default 2)")
    replicate.add_argument("--tear-rate", type=float, default=0.0,
                           metavar="RATE",
                           help="probability a frame arrives torn (prefix "
                                "only, stream cut)")
    replicate.add_argument("--lease", type=_positive_float, default=3.0,
                           help="failover lease in fake-clock seconds "
                                "(default 3; one round = one second)")
    replicate.add_argument("--link-capacity", type=_positive_int, default=16,
                           help="in-flight frames per link before "
                                "backpressure (default 16)")
    replicate.add_argument("--retain", type=_positive_int, default=512,
                           help="primary catch-up log size in frames; "
                                "falling past it forces a reseed "
                                "(default 512)")
    replicate.add_argument("--max-rounds", type=_positive_int, default=200,
                           help="final convergence budget in rounds "
                                "(default 200)")
    replicate.add_argument("--dir",
                           help="keep the cluster directories here (and a "
                                "replstatus.json) instead of a throwaway "
                                "temp dir")
    replicate.add_argument("--json", action="store_true",
                           help="print the full cluster status as JSON")
    replicate.set_defaults(func=cmd_replicate)

    replstatus = subparsers.add_parser(
        "replstatus",
        help="dump per-replica LSN lag, epochs, and link fault counters "
             "as JSON from a replicate --dir session",
    )
    replstatus.add_argument("--dir", required=True,
                            help="cluster root a 'replicate --dir' run "
                                 "left behind")
    replstatus.set_defaults(func=cmd_replstatus)

    experiments = subparsers.add_parser(
        "experiments", help="list or quick-run the experiment suite"
    )
    experiments.add_argument(
        "--run", nargs="?", const="quick",
        help="run the quick subset (optionally a comma-separated id list)",
    )
    experiments.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
