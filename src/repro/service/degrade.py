"""Brownout controller: the explicit degradation ladder.

Under overload or faults, a front door has better options than the
binary serve/collapse: it can shed *quality* before it sheds *work*.
The :class:`BrownoutController` walks a six-level ladder, one level
per observation round, guarded by hysteresis so transient spikes do
not flap the service between modes:

====  ==================  ==================================================
lvl   name                what the service gives up
====  ==================  ==================================================
0     normal              nothing
1     no-parallelism      intra-query parallelism (frees pool workers)
2     partial-answers     full answers: budgets tighten, the pipelined
                          engine may return a truncated answer flagged
                          DEGRADED instead of failing it
3     stale-serving       freshness: expired per-tenant cache entries
                          are served tagged ``stale=True`` while a
                          single-flight refresh recomputes them
4     replica-reads-only  primary reads: every routable read is pushed
                          to follower replicas (tagged with its LSN
                          lag), keeping the primary for writes — a
                          no-op rung when the service has no replicas
5     shed-new-work       availability for *new* requests: submissions
                          are refused with a retry-after hint
====  ==================  ==================================================

Escalation is driven only by *user-visible* pressure (queue depth,
latency, shed rate, failed responses).  De-escalation additionally
requires the refresh-failure canary to be quiet: while stale serving
masks a backend fault from tenants, the background refreshes keep
probing it, and their failures hold the ladder in place.  The
controller de-escalates one level after ``recovery_rounds``
consecutive clear rounds, where *clear* means every signal is under
``clear_factor`` × its escalation threshold — the hysteresis band in
between holds the current level and resets the healthy streak.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from ..resilience.clock import Clock, SYSTEM_CLOCK
from .health import HealthSignals

NORMAL = 0
NO_PARALLELISM = 1
PARTIAL_ANSWERS = 2
STALE_SERVING = 3
REPLICA_READS_ONLY = 4
SHED_NEW_WORK = 5

LEVEL_NAMES = (
    "normal",
    "no-parallelism",
    "partial-answers",
    "stale-serving",
    "replica-reads-only",
    "shed-new-work",
)


class BrownoutPolicy:
    """Thresholds and knobs for the ladder.  All escalation thresholds
    are fractions in [0, 1] except ``latency_high`` (seconds on the
    service clock)."""

    def __init__(
        self,
        *,
        queue_high: float = 0.75,
        latency_high: float = 0.25,
        shed_high: float = 0.5,
        failure_high: float = 0.5,
        clear_factor: float = 0.5,
        recovery_rounds: int = 3,
        budget_factor: float = 0.5,
        degraded_row_budget: Optional[int] = None,
        degraded_time_budget: Optional[float] = None,
        stale_max_epochs: int = 1,
        refreshes_per_round: int = 1,
    ):
        if not 0.0 < clear_factor <= 1.0:
            raise ValueError("clear_factor must be in (0, 1], got %r" % clear_factor)
        if recovery_rounds < 1:
            raise ValueError(
                "recovery_rounds must be >= 1, got %r" % (recovery_rounds,)
            )
        if stale_max_epochs < 1:
            raise ValueError(
                "stale_max_epochs must be >= 1, got %r" % (stale_max_epochs,)
            )
        self.queue_high = queue_high
        self.latency_high = latency_high
        self.shed_high = shed_high
        self.failure_high = failure_high
        self.clear_factor = clear_factor
        self.recovery_rounds = recovery_rounds
        self.budget_factor = budget_factor
        self.degraded_row_budget = degraded_row_budget
        self.degraded_time_budget = degraded_time_budget
        self.stale_max_epochs = stale_max_epochs
        self.refreshes_per_round = refreshes_per_round

    def as_dict(self) -> dict:
        return {
            "queue_high": self.queue_high,
            "latency_high": self.latency_high,
            "shed_high": self.shed_high,
            "failure_high": self.failure_high,
            "clear_factor": self.clear_factor,
            "recovery_rounds": self.recovery_rounds,
            "budget_factor": self.budget_factor,
            "degraded_row_budget": self.degraded_row_budget,
            "degraded_time_budget": self.degraded_time_budget,
            "stale_max_epochs": self.stale_max_epochs,
            "refreshes_per_round": self.refreshes_per_round,
        }


class BrownoutController:
    """Observes :class:`~repro.service.health.HealthSignals` once per
    scheduling round and moves at most one ladder level per round."""

    def __init__(
        self,
        policy: Optional[BrownoutPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.policy = policy if policy is not None else BrownoutPolicy()
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self._lock = threading.RLock()
        self._level = NORMAL
        self._healthy_streak = 0
        #: (clock time, from-level, to-level, reason) — the audit trail
        #: E19 and the tests use to prove the ladder went up *and* came
        #: back down.
        self.transitions: List[Tuple[float, int, int, str]] = []
        self.observations = 0

    # ------------------------------------------------------------------
    # Level queries (what the serving loop asks each round / request)

    @property
    def level(self) -> int:
        return self._level

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self._level]

    @property
    def allows_parallelism(self) -> bool:
        return self._level < NO_PARALLELISM

    @property
    def allow_partial(self) -> bool:
        return self._level >= PARTIAL_ANSWERS

    @property
    def serve_stale(self) -> bool:
        return self._level >= STALE_SERVING

    @property
    def replica_reads_only(self) -> bool:
        return self._level >= REPLICA_READS_ONLY

    @property
    def shed_new_work(self) -> bool:
        return self._level >= SHED_NEW_WORK

    def effective_budgets(
        self,
        row_budget: Optional[int],
        time_budget: Optional[float],
    ) -> Tuple[Optional[int], Optional[float]]:
        """Tighten a request's configured budgets at partial-answers
        and above.  Explicit degraded budgets win; otherwise the
        configured budgets are scaled by ``budget_factor``."""
        if self._level < PARTIAL_ANSWERS:
            return row_budget, time_budget
        policy = self.policy
        rows = policy.degraded_row_budget
        if rows is None and row_budget is not None:
            rows = max(1, int(row_budget * policy.budget_factor))
        elif rows is None:
            rows = row_budget
        seconds = policy.degraded_time_budget
        if seconds is None and time_budget is not None:
            seconds = time_budget * policy.budget_factor
        elif seconds is None:
            seconds = time_budget
        return rows, seconds

    # ------------------------------------------------------------------
    # The ladder

    def observe(self, signals: HealthSignals) -> int:
        """Fold one round of health signals; returns the (possibly
        changed) level."""
        with self._lock:
            self.observations += 1
            policy = self.policy
            pressure = self._pressure_reasons(signals, factor=1.0)
            if pressure:
                self._healthy_streak = 0
                if self._level < SHED_NEW_WORK:
                    self._move(self._level + 1, "pressure: " + ", ".join(pressure))
                return self._level
            # No escalation pressure.  Clear enough to recover?
            lingering = self._pressure_reasons(signals, factor=policy.clear_factor)
            if not lingering and signals.refresh_failure_fraction <= 0.0:
                self._healthy_streak += 1
                if self._level > NORMAL and self._healthy_streak >= policy.recovery_rounds:
                    self._move(
                        self._level - 1,
                        "recovered: %d clear rounds" % self._healthy_streak,
                    )
                    self._healthy_streak = 0
            else:
                # Hysteresis band (or the refresh canary is firing):
                # hold the level, restart the healthy streak.
                self._healthy_streak = 0
            return self._level

    def _pressure_reasons(self, signals: HealthSignals, factor: float) -> List[str]:
        policy = self.policy
        reasons = []
        if signals.queue_fraction > policy.queue_high * factor:
            reasons.append("queue %.2f" % signals.queue_fraction)
        if signals.latency_ewma > policy.latency_high * factor:
            reasons.append("latency %.3fs" % signals.latency_ewma)
        if signals.shed_fraction > policy.shed_high * factor:
            reasons.append("shed %.2f" % signals.shed_fraction)
        if signals.failure_fraction > policy.failure_high * factor:
            reasons.append("failures %.2f" % signals.failure_fraction)
        return reasons

    def _move(self, level: int, reason: str) -> None:
        level = max(NORMAL, min(SHED_NEW_WORK, level))
        if level == self._level:
            return
        self.transitions.append((self.clock.monotonic(), self._level, level, reason))
        self._level = level

    def force(self, level: int, reason: str = "forced") -> None:
        """Pin the ladder to a level (tests, operator override)."""
        with self._lock:
            self._move(level, reason)
            self._healthy_streak = 0

    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "level": self._level,
                "level_name": self.level_name,
                "healthy_streak": self._healthy_streak,
                "observations": self.observations,
                "transitions": [
                    {"at": at, "from": src, "to": dst, "reason": reason}
                    for at, src, dst, reason in self.transitions
                ],
                "policy": self.policy.as_dict(),
            }

    def __repr__(self) -> str:
        return "BrownoutController(level=%s, streak=%d)" % (
            self.level_name,
            self._healthy_streak,
        )


__all__ = [
    "BrownoutController",
    "BrownoutPolicy",
    "LEVEL_NAMES",
    "NORMAL",
    "NO_PARALLELISM",
    "PARTIAL_ANSWERS",
    "REPLICA_READS_ONLY",
    "SHED_NEW_WORK",
    "STALE_SERVING",
]
