"""The request/ticket vocabulary of the multi-tenant query service.

A :class:`QueryRequest` is what a tenant hands the front door: the
query, the strategy to answer it with, a priority within the tenant's
own queue, and an optional deadline.  Admission turns it into a
:class:`Ticket` — the service-side handle that tracks the request
through ``queued → running → done/failed`` (or ``expired``, when its
deadline passes while still queued) and carries the timing stamps the
metrics layer aggregates.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core.answerer import AnswerReport, Strategy

#: Ticket lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"

#: Process-wide request identity (diagnostic only; ordering inside the
#: service uses the per-service admission sequence).
_request_counter = itertools.count(1)


class QueryRequest:
    """One tenant's query-answering request.

    ``priority`` orders requests *within* the tenant's queue (higher
    first; ties arrival-ordered) — cross-tenant ordering is the
    weighted fair scheduler's job, so one tenant's priorities can never
    starve another tenant.  ``deadline`` (seconds from arrival, on the
    service clock) sheds the request if it is still queued when the
    horizon passes.  ``snapshot`` pins evaluation to an
    epoch-stamped :class:`~repro.storage.snapshot.StoreSnapshot`
    obtained from :meth:`~repro.service.service.QueryService.pin`.
    """

    def __init__(
        self,
        tenant: str,
        query,
        strategy: Strategy = Strategy.REF_GCOV,
        priority: int = 0,
        deadline: Optional[float] = None,
        snapshot=None,
        cover=None,
    ):
        if deadline is not None and deadline <= 0:
            raise ValueError(
                "a deadline needs a positive horizon, got %r" % (deadline,)
            )
        if strategy is Strategy.REF_JUCQ and cover is None:
            raise ValueError("REF_JUCQ requests need a cover")
        self.tenant = tenant
        self.query = query
        self.strategy = strategy
        self.priority = priority
        self.deadline = deadline
        self.snapshot = snapshot
        self.cover = cover
        self.request_id = next(_request_counter)

    def __repr__(self) -> str:
        return "QueryRequest(%s, %s, priority=%d%s)" % (
            self.tenant,
            self.strategy.value,
            self.priority,
            ", deadline=%.3fs" % self.deadline if self.deadline else "",
        )


class Ticket:
    """The admitted request's service-side handle.

    ``sequence`` is the per-service admission number — it breaks
    priority ties FIFO and names the request in budget attribution
    (:attr:`owner` is the ``tenant/req-N`` string stamped onto
    execution budgets).
    """

    def __init__(self, request: QueryRequest, sequence: int, arrived_at: float):
        self.request = request
        self.sequence = sequence
        self.arrived_at = arrived_at
        self.status = QUEUED
        self.report: Optional[AnswerReport] = None
        self.error: Optional[BaseException] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: ``"hit"`` / ``"miss"`` / ``"stale"`` when the tenant cache
        #: partition was consulted (``"stale"`` = an expired entry was
        #: served under stale-while-revalidate), None for uncacheable
        #: (snapshot-pinned) reads.
        self.cache: Optional[str] = None

    @property
    def owner(self) -> str:
        """The attribution label stamped onto this request's budgets."""
        return "%s/req-%d" % (self.request.tenant, self.sequence)

    @property
    def answer(self):
        return None if self.report is None else self.report.answer

    @property
    def degraded(self) -> bool:
        """Did the answer go out flagged as a truncated partial
        (brownout partial-answers mode)?"""
        return self.report is not None and bool(
            self.report.details.get("partial")
        )

    @property
    def stale(self) -> bool:
        """Was an expired cache entry served (stale-while-revalidate)?"""
        return self.report is not None and bool(self.report.details.get("stale"))

    def queue_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.arrived_at

    def service_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def latency_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrived_at

    def __repr__(self) -> str:
        return "Ticket(%s, %s)" % (self.owner, self.status)
