"""Service health tracking: the signals the brownout ladder reads.

A :class:`HealthMonitor` folds the serving loop's raw events into a
small set of smoothed signals, one :class:`HealthSignals` snapshot per
scheduling round:

* **queue pressure** — backlog over total queue capacity, EWMA'd so a
  single bursty round does not flap the ladder;
* **latency** — an EWMA of completed-request latencies on the injected
  clock (stale serves included: they are responses too);
* **shed fraction** — the round's shed/submitted ratio, EWMA'd;
* **failure fraction** — failed over attempted responses this round
  (*user-visible* distress: the signal that escalates the ladder);
* **refresh-failure fraction** — the stale-serving canary: while
  stale answers mask faults from tenants, the single-flight refreshes
  still probe the backend, and their failures are the evidence that
  the fault has not cleared (it holds the ladder down without
  escalating it further);
* **per-tenant circuit breakers** — ``breaker_threshold`` consecutive
  tenant-local failures open the tenant's
  :class:`~repro.resilience.breaker.CircuitBreaker`; its requests are
  then shed at the front door until the cooldown elapses, and — the
  point — its failures stop feeding the global signals, so one
  pathological tenant cannot drag every other tenant down the ladder.

Everything reads time through the injected clock, so the whole health
pipeline replays deterministically under
:class:`~repro.resilience.clock.FakeClock`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..resilience.breaker import CircuitBreaker
from ..resilience.clock import Clock, SYSTEM_CLOCK

#: Default per-tenant breaker contract (used when a service enables
#: breakers without picking numbers).
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_COOLDOWN = 5.0

#: EWMA smoothing factor: weight of the newest round.
EWMA_ALPHA = 0.3


def _ewma(previous: Optional[float], sample: float, alpha: float = EWMA_ALPHA) -> float:
    if previous is None:
        return sample
    return (1.0 - alpha) * previous + alpha * sample


class HealthSignals:
    """One round's smoothed health snapshot (what the ladder reads)."""

    __slots__ = (
        "round_index",
        "backlog",
        "queue_fraction",
        "latency_ewma",
        "shed_fraction",
        "failure_fraction",
        "refresh_failure_fraction",
        "failure_rounds",
        "open_breakers",
        "attempts",
    )

    def __init__(
        self,
        round_index: int = 0,
        backlog: int = 0,
        queue_fraction: float = 0.0,
        latency_ewma: float = 0.0,
        shed_fraction: float = 0.0,
        failure_fraction: float = 0.0,
        refresh_failure_fraction: float = 0.0,
        failure_rounds: int = 0,
        open_breakers: int = 0,
        attempts: int = 0,
    ):
        self.round_index = round_index
        self.backlog = backlog
        self.queue_fraction = queue_fraction
        self.latency_ewma = latency_ewma
        self.shed_fraction = shed_fraction
        self.failure_fraction = failure_fraction
        self.refresh_failure_fraction = refresh_failure_fraction
        self.failure_rounds = failure_rounds
        self.open_breakers = open_breakers
        self.attempts = attempts

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            "HealthSignals(round=%d, queue=%.2f, fail=%.2f, refresh_fail=%.2f, "
            "shed=%.2f)"
            % (
                self.round_index,
                self.queue_fraction,
                self.failure_fraction,
                self.refresh_failure_fraction,
                self.shed_fraction,
            )
        )


class HealthMonitor:
    """Aggregates serving-loop events into per-round health signals.

    ``total_queue_depth`` normalizes the backlog into a 0..1 queue
    pressure.  ``breaker_threshold`` of ``None`` (or ``0``) disables
    per-tenant breakers entirely — the monitor still produces the
    global signals.
    """

    def __init__(
        self,
        tenants: Sequence[str],
        *,
        total_queue_depth: int = 1,
        clock: Optional[Clock] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        alpha: float = EWMA_ALPHA,
    ):
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.total_queue_depth = max(1, total_queue_depth)
        self.alpha = alpha
        self.breakers: Dict[str, CircuitBreaker] = {}
        if breaker_threshold:
            self.breakers = {
                name: CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    cooldown_seconds=breaker_cooldown,
                    clock=self.clock,
                )
                for name in tenants
            }
        self._lock = threading.RLock()
        # Smoothed signals (None = no sample yet).
        self._queue_ewma: Optional[float] = None
        self._latency_ewma: Optional[float] = None
        self._shed_ewma: Optional[float] = None
        # Current-round counters, folded by end_round().
        self._round_submitted = 0
        self._round_shed = 0
        self._round_attempts = 0
        self._round_failed = 0
        self._round_refreshes = 0
        self._round_refresh_failures = 0
        #: Consecutive rounds with at least one user-visible failure.
        self.failure_rounds = 0
        self.rounds = 0
        # Lifetime counters, for the health report.
        self.stale_serves = 0
        self.degraded_answers = 0
        self.failures = 0
        self.refreshes = 0
        self.refresh_failures = 0

    # ------------------------------------------------------------------
    # Event feed (called from the service's submit/account paths)

    def note_submitted(self) -> None:
        with self._lock:
            self._round_submitted += 1

    def note_shed(self) -> None:
        with self._lock:
            self._round_shed += 1

    def note_completed(
        self,
        tenant: str,
        latency_seconds: Optional[float],
        stale: bool = False,
        degraded: bool = False,
    ) -> None:
        """A response went out.  Stale serves count as *responses* (the
        tenant got an answer) but do not reset the tenant's breaker —
        the backend was never exercised on their behalf."""
        with self._lock:
            self._round_attempts += 1
            if latency_seconds is not None:
                self._latency_ewma = _ewma(
                    self._latency_ewma, latency_seconds, self.alpha
                )
            if stale:
                self.stale_serves += 1
            if degraded:
                self.degraded_answers += 1
            if not stale:
                breaker = self.breakers.get(tenant)
                if breaker is not None:
                    breaker.record_success()

    def note_failure(self, tenant: str) -> None:
        """A request failed in the serving loop (budget, fault, blowup).
        Feeds the tenant's breaker *and* the global failure signal."""
        with self._lock:
            self._round_attempts += 1
            self._round_failed += 1
            self.failures += 1
            breaker = self.breakers.get(tenant)
            if breaker is not None:
                breaker.record_failure()

    def note_refresh(self, ok: bool) -> None:
        """A single-flight stale refresh finished.  Failures feed the
        canary signal only — never a tenant breaker (refreshes are
        service-initiated, not tenant-submitted work)."""
        with self._lock:
            self._round_refreshes += 1
            self.refreshes += 1
            if not ok:
                self._round_refresh_failures += 1
                self.refresh_failures += 1

    # ------------------------------------------------------------------
    # Breakers

    def breaker_for(self, tenant: str) -> Optional[CircuitBreaker]:
        return self.breakers.get(tenant)

    def breaker_states(self) -> Dict[str, str]:
        return {name: breaker.state for name, breaker in sorted(self.breakers.items())}

    def open_tenants(self) -> List[str]:
        from ..resilience.breaker import OPEN

        return [
            name
            for name, breaker in sorted(self.breakers.items())
            if breaker.state == OPEN
        ]

    # ------------------------------------------------------------------
    # Round boundary

    def end_round(self, backlog: int) -> HealthSignals:
        """Fold the round's counters into the EWMAs and emit the
        snapshot the brownout controller observes."""
        with self._lock:
            self.rounds += 1
            self._queue_ewma = _ewma(
                self._queue_ewma,
                min(1.0, backlog / self.total_queue_depth),
                self.alpha,
            )
            shed_sample = (
                self._round_shed / self._round_submitted
                if self._round_submitted
                else 0.0
            )
            self._shed_ewma = _ewma(self._shed_ewma, shed_sample, self.alpha)
            failure_fraction = (
                self._round_failed / self._round_attempts
                if self._round_attempts
                else 0.0
            )
            refresh_failure_fraction = (
                self._round_refresh_failures / self._round_refreshes
                if self._round_refreshes
                else 0.0
            )
            if self._round_failed:
                self.failure_rounds += 1
            else:
                self.failure_rounds = 0
            signals = HealthSignals(
                round_index=self.rounds,
                backlog=backlog,
                queue_fraction=self._queue_ewma or 0.0,
                latency_ewma=self._latency_ewma or 0.0,
                shed_fraction=self._shed_ewma or 0.0,
                failure_fraction=failure_fraction,
                refresh_failure_fraction=refresh_failure_fraction,
                failure_rounds=self.failure_rounds,
                open_breakers=len(self.open_tenants()),
                attempts=self._round_attempts,
            )
            self._round_submitted = 0
            self._round_shed = 0
            self._round_attempts = 0
            self._round_failed = 0
            self._round_refreshes = 0
            self._round_refresh_failures = 0
            return signals

    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "rounds": self.rounds,
                "queue_ewma": self._queue_ewma or 0.0,
                "latency_ewma": self._latency_ewma or 0.0,
                "shed_ewma": self._shed_ewma or 0.0,
                "failure_rounds": self.failure_rounds,
                "failures": self.failures,
                "stale_serves": self.stale_serves,
                "degraded_answers": self.degraded_answers,
                "refreshes": self.refreshes,
                "refresh_failures": self.refresh_failures,
                "breakers": self.breaker_states(),
                "open_breakers": self.open_tenants(),
            }

    def __repr__(self) -> str:
        return "HealthMonitor(rounds=%d, failures=%d, stale=%d)" % (
            self.rounds,
            self.failures,
            self.stale_serves,
        )


__all__ = [
    "DEFAULT_BREAKER_COOLDOWN",
    "DEFAULT_BREAKER_THRESHOLD",
    "EWMA_ALPHA",
    "HealthMonitor",
    "HealthSignals",
]
