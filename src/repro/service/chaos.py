"""Service-level chaos: inject faults *inside* the serving loop.

PR 2's :class:`~repro.resilience.faults.FaultPlan` injects faults at
the federated-endpoint boundary; :class:`ServiceChaos` adapts the same
seeded plan to the :class:`~repro.service.service.QueryService`
execution path, so answerer/store faults hit requests that never touch
federation.  The service calls :meth:`maybe_fail` once per execution
(and per stale refresh), in deterministic scheduling order, so a
(seed, request sequence) pair replays the identical fault schedule —
the property E19 and the chaos-serving CI matrix rely on.

``arm()``/``disarm()`` switch injection on and off without consuming
plan draws, which is how benchmark schedules model a fault *window*:
the draws while disarmed are simply not taken, so the post-window
world is fault-free regardless of the plan's rates.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..resilience.clock import Clock, SYSTEM_CLOCK
from ..resilience.errors import EndpointOutage, TransientEndpointError
from ..resilience.faults import FaultPlan


class ServiceChaos:
    """Applies a :class:`FaultPlan` to serving-loop executions."""

    def __init__(
        self,
        plan: FaultPlan,
        clock: Optional[Clock] = None,
        armed: bool = True,
    ):
        self.plan = plan
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.armed = armed
        self.injected: Dict[str, int] = {
            "transient": 0,
            "outage": 0,
            "latency": 0,
        }

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def maybe_fail(self, what: str = "request") -> None:
        """Consume one plan draw and inject its faults: added latency
        is slept on the injected clock (so watchdog budgets observe
        it), then outages/transients raise.  No-op while disarmed."""
        if not self.armed:
            return
        decision = self.plan.decide()
        if decision.latency_seconds > 0:
            self.injected["latency"] += 1
            self.clock.sleep(decision.latency_seconds)
        if decision.outage:
            self.injected["outage"] += 1
            raise EndpointOutage(
                "%s failed: injected outage" % (what,), endpoint_name="service"
            )
        if decision.transient:
            self.injected["transient"] += 1
            raise TransientEndpointError(
                "%s failed: injected transient fault" % (what,),
                endpoint_name="service",
            )

    def as_dict(self) -> dict:
        return {
            "armed": self.armed,
            "seed": self.plan.seed,
            "requests_seen": self.plan.requests_seen,
            "injected": dict(self.injected),
        }

    def __repr__(self) -> str:
        return "ServiceChaos(%r, armed=%s, injected=%r)" % (
            self.plan,
            self.armed,
            self.injected,
        )


__all__ = ["ServiceChaos"]
