"""Service observability: per-tenant counters and latency percentiles.

The same nearest-rank percentile convention as the benchmark suite
(:mod:`repro.bench`): ``p50`` of N sorted samples is element
``ceil(0.50 * N) - 1``.  All counters are plain integers updated under
one lock; :meth:`ServiceMetrics.as_dict` is the JSON-ready view the
CLI and benchmark E18 emit.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (fraction in (0, 1])."""
    if not values:
        return 0.0
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1], got %r" % (fraction,))
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


class TenantMetrics:
    """One tenant's counters (mutated only via :class:`ServiceMetrics`)."""

    def __init__(self, name: str):
        self.name = name
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.expired = 0
        self.shed: Dict[str, int] = {}
        self.rows_returned = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Fan-out aborts attributed *to this tenant as originator* —
        #: sibling-abort copies land here via ``BudgetExceeded.owner``,
        #: never on the tenant that merely shared the worker pool.
        self.budget_trips = 0
        #: Budget aborts split by ``BudgetExceeded.kind`` ("rows" /
        #: "time"), from the exception's own ``details`` attribution.
        self.aborted: Dict[str, int] = {}
        #: The request labels (``tenant/req-N``) whose budgets tripped,
        #: so overruns are queryable per request, not just per tenant.
        self.aborted_requests: List[str] = []
        #: Failures split by exception class name.
        self.failures_by_reason: Dict[str, int] = {}
        #: Degraded-mode serving counters.
        self.degraded = 0
        self.stale_serves = 0
        self.refreshes = 0
        self.refresh_failures = 0
        self.latencies: List[float] = []
        self.queue_waits: List[float] = []
        self.service_times: List[float] = []

    def shed_total(self) -> int:
        return sum(self.shed.values())

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "expired": self.expired,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": self.shed_total(),
            "rows_returned": self.rows_returned,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "budget_trips": self.budget_trips,
            "aborted": dict(sorted(self.aborted.items())),
            "aborted_requests": list(self.aborted_requests),
            "failures_by_reason": dict(sorted(self.failures_by_reason.items())),
            "degraded": self.degraded,
            "stale_serves": self.stale_serves,
            "refreshes": self.refreshes,
            "refresh_failures": self.refresh_failures,
            "latency": {
                "p50": percentile(self.latencies, 0.50),
                "p95": percentile(self.latencies, 0.95),
                "p99": percentile(self.latencies, 0.99),
            },
        }


class ServiceMetrics:
    """Aggregated counters for one :class:`~repro.service.QueryService`.

    Conservation invariant (checked by the property-based admission
    test): ``submitted == admitted + shed_total`` for every tenant, and
    ``admitted == completed + failed + expired + still-queued``.
    """

    def __init__(self, tenants: Sequence[str] = ()):  # pre-seed buckets
        self._lock = threading.RLock()
        self.tenants: Dict[str, TenantMetrics] = {
            name: TenantMetrics(name) for name in tenants
        }

    def _bucket(self, tenant: str) -> TenantMetrics:
        bucket = self.tenants.get(tenant)
        if bucket is None:
            bucket = self.tenants[tenant] = TenantMetrics(tenant)
        return bucket

    # ------------------------------------------------------------------

    def note_submitted(self, tenant: str) -> None:
        with self._lock:
            self._bucket(tenant).submitted += 1

    def note_admitted(self, tenant: str) -> None:
        with self._lock:
            self._bucket(tenant).admitted += 1

    def note_shed(self, tenant: str, reason: str) -> None:
        with self._lock:
            bucket = self._bucket(tenant)
            bucket.shed[reason] = bucket.shed.get(reason, 0) + 1

    def note_expired(self, tenant: str) -> None:
        with self._lock:
            self._bucket(tenant).expired += 1

    def note_completed(
        self,
        tenant: str,
        queue_seconds: float,
        service_seconds: float,
        latency_seconds: float,
        rows: int,
        cache: Optional[str] = None,
        degraded: bool = False,
    ) -> None:
        with self._lock:
            bucket = self._bucket(tenant)
            bucket.completed += 1
            bucket.rows_returned += rows
            bucket.queue_waits.append(queue_seconds)
            bucket.service_times.append(service_seconds)
            bucket.latencies.append(latency_seconds)
            if cache == "hit":
                bucket.cache_hits += 1
            elif cache == "miss":
                bucket.cache_misses += 1
            elif cache == "stale":
                bucket.stale_serves += 1
            if degraded:
                bucket.degraded += 1

    def note_failed(self, tenant: str, reason: Optional[str] = None) -> None:
        with self._lock:
            bucket = self._bucket(tenant)
            bucket.failed += 1
            if reason:
                bucket.failures_by_reason[reason] = (
                    bucket.failures_by_reason.get(reason, 0) + 1
                )

    def note_budget_trip(
        self,
        owner_tenant: str,
        owner: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> None:
        """Attribute one budget overrun to its *originating* tenant —
        callers pass the tenant parsed from ``BudgetExceeded.owner``,
        not the tenant whose worker happened to observe the abort.
        ``owner``/``kind`` (from ``BudgetExceeded.details``) keep the
        per-request and rows-vs-time breakdown queryable."""
        with self._lock:
            bucket = self._bucket(owner_tenant)
            bucket.budget_trips += 1
            if kind:
                bucket.aborted[kind] = bucket.aborted.get(kind, 0) + 1
            if owner:
                bucket.aborted_requests.append(owner)

    def note_refresh(self, tenant: str, ok: bool) -> None:
        """A single-flight stale refresh finished for *tenant*."""
        with self._lock:
            bucket = self._bucket(tenant)
            bucket.refreshes += 1
            if not ok:
                bucket.refresh_failures += 1

    # ------------------------------------------------------------------
    # Aggregate views

    def totals(self) -> dict:
        with self._lock:
            buckets = list(self.tenants.values())
        return {
            "submitted": sum(b.submitted for b in buckets),
            "admitted": sum(b.admitted for b in buckets),
            "completed": sum(b.completed for b in buckets),
            "failed": sum(b.failed for b in buckets),
            "expired": sum(b.expired for b in buckets),
            "shed": sum(b.shed_total() for b in buckets),
            "rows_returned": sum(b.rows_returned for b in buckets),
            "cache_hits": sum(b.cache_hits for b in buckets),
            "cache_misses": sum(b.cache_misses for b in buckets),
            "budget_trips": sum(b.budget_trips for b in buckets),
            "degraded": sum(b.degraded for b in buckets),
            "stale_serves": sum(b.stale_serves for b in buckets),
            "refreshes": sum(b.refreshes for b in buckets),
            "refresh_failures": sum(b.refresh_failures for b in buckets),
        }

    def shed_rate(self) -> float:
        totals = self.totals()
        if totals["submitted"] == 0:
            return 0.0
        return totals["shed"] / totals["submitted"]

    def latency_percentiles(self, tenant: Optional[str] = None) -> dict:
        with self._lock:
            if tenant is not None:
                samples = list(self._bucket(tenant).latencies)
            else:
                samples = [
                    value
                    for bucket in self.tenants.values()
                    for value in bucket.latencies
                ]
        return {
            "p50": percentile(samples, 0.50),
            "p95": percentile(samples, 0.95),
            "p99": percentile(samples, 0.99),
        }

    def completions_by_tenant(self) -> Dict[str, int]:
        """The fairness witness: completed counts per tenant."""
        with self._lock:
            return {name: b.completed for name, b in sorted(self.tenants.items())}

    def as_dict(self) -> dict:
        with self._lock:
            per_tenant = {
                name: bucket.as_dict()
                for name, bucket in sorted(self.tenants.items())
            }
        payload = self.totals()
        payload["shed_rate"] = self.shed_rate()
        payload["latency"] = self.latency_percentiles()
        payload["tenants"] = per_tenant
        return payload


__all__ = ["ServiceMetrics", "TenantMetrics", "percentile"]
