"""The multi-tenant query service front door.

:class:`QueryService` glues the serving stack together on top of one
writer :class:`~repro.core.answerer.QueryAnswerer`:

* **admission** — :meth:`submit` charges each
  :class:`~repro.service.request.QueryRequest` against the tenant's
  bounded queue and standing quota
  (:class:`~repro.service.admission.AdmissionController`), shedding
  past saturation with a typed
  :class:`~repro.service.admission.AdmissionRejected`;
* **execution** — :meth:`step` dequeues up to ``capacity`` tickets in
  weighted-fair order and answers them; :meth:`drain` steps until the
  queues are empty.  Execution is *step-driven* rather than
  thread-driven: the scheduling decisions are taken serially under the
  injected clock, which makes every interleaving a deterministic,
  replayable script (the concurrency test harness drives exactly this
  entry point), while the per-query evaluation itself may still fan
  out on a worker pool;
* **caching** — each tenant owns a private
  :class:`~repro.cache.QueryCache` partition keyed by its own dataset
  token; all partitions watch the one shared store, so a write
  invalidates every tenant's answers at the same epoch (shared-epoch
  invalidation: no tenant can read another tenant's entries, and no
  tenant can read stale data either);
* **snapshot reads** — :meth:`pin` hands out an epoch-pinned
  :class:`~repro.storage.snapshot.StoreSnapshot`; a request carrying
  one is answered by a reader answerer materialized from the pinned
  state, byte-identical no matter what the writer does concurrently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cache import QueryCache, dataset_token
from ..core.answerer import AnswerReport, QueryAnswerer, Strategy
from ..parallel import ExecutorPool
from ..reformulation.engine import ReformulationTooLarge
from ..resilience.clock import Clock, SYSTEM_CLOCK
from ..resilience.errors import BudgetExceeded
from ..storage.backends import QueryTooLargeError
from ..storage.snapshot import SnapshotManager, StoreSnapshot
from .admission import AdmissionController, AdmissionRejected, TenantConfig
from .metrics import ServiceMetrics
from .request import DONE, FAILED, RUNNING, QueryRequest, Ticket


class QueryService:
    """A multi-tenant serving layer over one dataset.

    ``tenants`` are :class:`~repro.service.admission.TenantConfig`
    entries (bare names get default weight/depth).  ``capacity`` is how
    many requests one :meth:`step` round executes.  ``pool`` optionally
    fans the round's requests out over an
    :class:`~repro.parallel.ExecutorPool`; accounting is applied in
    deterministic ticket order regardless.  ``clock`` drives every
    timestamp, deadline, and retry-after hint — tests inject a
    :class:`~repro.resilience.clock.FakeClock` and replay identical
    schedules.
    """

    def __init__(
        self,
        graph,
        schema=None,
        *,
        tenants: Sequence[Union[str, TenantConfig]],
        engine: str = "builtin",
        capacity: int = 2,
        clock: Optional[Clock] = None,
        pool: Optional[ExecutorPool] = None,
        cache_answers: int = 512,
        cache_reformulations: int = 128,
    ):
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.engine = engine
        self.pool = pool
        self.answerer = QueryAnswerer(graph, schema, engine=engine)
        self.snapshots = SnapshotManager(self.answerer.store)
        configs = [
            t if isinstance(t, TenantConfig) else TenantConfig(t) for t in tenants
        ]
        self.admission = AdmissionController(
            configs, capacity=capacity, clock=self.clock
        )
        self.capacity = capacity
        self.metrics = ServiceMetrics([c.name for c in configs])
        # Per-tenant cache partitions: private entries (one dataset
        # token per tenant keeps keys disjoint even if partitions were
        # ever merged), shared invalidation epochs via the one store.
        self._caches: Dict[str, QueryCache] = {}
        self._tokens: Dict[str, int] = {}
        for config in configs:
            cache = QueryCache(cache_reformulations, cache_answers)
            cache.watch_store(self.answerer.store)
            self._caches[config.name] = cache
            self._tokens[config.name] = dataset_token()
        #: Reader answerers materialized per pinned snapshot epoch,
        #: shared by every request pinned at that epoch.
        self._readers: Dict[int, QueryAnswerer] = {}

    # ------------------------------------------------------------------
    # Front door

    def submit(self, request: QueryRequest) -> Ticket:
        """Admit *request*, or shed it with
        :class:`~repro.service.admission.AdmissionRejected`."""
        self.metrics.note_submitted(request.tenant)
        try:
            ticket = self.admission.submit(request)
        except AdmissionRejected as exc:
            self.metrics.note_shed(request.tenant, exc.reason)
            raise
        self.metrics.note_admitted(request.tenant)
        return ticket

    def pin(self) -> StoreSnapshot:
        """An O(1) epoch-pinned snapshot for later snapshot reads."""
        return self.snapshots.pin()

    def release(self, snapshot: StoreSnapshot) -> None:
        """Release *snapshot* and drop its reader once unpinned."""
        epoch = snapshot.epoch
        snapshot.release()
        if epoch in self._readers and not self.snapshots.pinned_at(epoch):
            del self._readers[epoch]

    # ------------------------------------------------------------------
    # Writes (all go through the writer answerer, so the snapshot COW
    # hooks and every tenant's cache invalidation fire on the way)

    def insert(self, triple) -> bool:
        return self.answerer.insert(triple)

    def delete(self, triple) -> bool:
        return self.answerer.delete(triple)

    def load(self, graph) -> int:
        """Bulk-load *graph*'s data triples; returns how many were new."""
        count = 0
        for triple in graph.data_triples():
            if self.answerer.insert(triple):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Scheduler

    def step(self) -> List[Ticket]:
        """Run one scheduling round: dequeue up to ``capacity`` tickets
        in weighted-fair order, execute them, account them.  Returns
        the tickets that left the queue this round (done, failed, or
        expired), in scheduling order."""
        runnable, expired = self.admission.next_batch(self.capacity)
        for ticket in expired:
            self.metrics.note_expired(ticket.request.tenant)
        if self.pool is not None and self.pool.usable() and len(runnable) > 1:
            # The pool call only parallelizes evaluation; results land
            # on the tickets, and accounting below runs in scheduling
            # order, so the metrics stream is identical to a serial
            # round.
            self.pool.map(self._execute, runnable)
        else:
            for ticket in runnable:
                self._execute(ticket)
        for ticket in runnable:
            self._account(ticket)
        return runnable + expired

    def drain(self, max_steps: int = 10_000) -> List[Ticket]:
        """Step until every queue is empty; returns all finished
        tickets in completion order."""
        finished: List[Ticket] = []
        steps = 0
        while self.admission.backlog() > 0:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    "drain did not converge after %d steps (backlog %d)"
                    % (max_steps, self.admission.backlog())
                )
            finished.extend(self.step())
        return finished

    # ------------------------------------------------------------------
    # Execution internals

    def _answerer_for(self, request: QueryRequest) -> Tuple[QueryAnswerer, bool]:
        """The answerer evaluating *request*: the live writer, or a
        reader materialized from the request's pinned snapshot (one
        reader per epoch, shared across requests)."""
        snapshot = request.snapshot
        if snapshot is None:
            return self.answerer, False
        reader = self._readers.get(snapshot.epoch)
        if reader is None:
            store = snapshot.store()
            reader = QueryAnswerer(
                store.to_graph(), store.schema, engine=self.engine
            )
            self._readers[snapshot.epoch] = reader
        return reader, True

    def _execute(self, ticket: Ticket) -> None:
        request = ticket.request
        ticket.status = RUNNING
        ticket.started_at = self.clock.monotonic()
        config = self.admission.tenants[request.tenant]
        answerer, pinned = self._answerer_for(request)
        cache = None if pinned else self._caches.get(request.tenant)
        key = None
        if cache is not None:
            key = cache.answer_key(
                self._tokens[request.tenant],
                request.query,
                answerer.schema,
                answerer.policy,
                request.strategy.value,
                cover=request.cover
                if request.strategy is Strategy.REF_JUCQ
                else None,
                extra=("service", self.engine),
            )
            hit = cache.lookup_answer(key)
            if hit is not None:
                answer, details = hit
                ticket.cache = "hit"
                ticket.status = DONE
                ticket.finished_at = self.clock.monotonic()
                details = dict(details)
                details["cache"] = {"answer": "hit", "tenant": request.tenant}
                ticket.report = AnswerReport(
                    request.strategy,
                    answer,
                    ticket.finished_at - ticket.started_at,
                    details,
                )
                return
        kwargs = {}
        if config.request_rows is not None or config.request_seconds is not None:
            kwargs = {
                "row_budget": config.request_rows,
                "time_budget": config.request_seconds,
                "budget_owner": ticket.owner,
            }
        try:
            report = answerer.answer(
                request.query,
                request.strategy,
                cover=request.cover,
                **kwargs,
            )
        except (
            BudgetExceeded,
            ReformulationTooLarge,
            QueryTooLargeError,
        ) as exc:
            ticket.error = exc
            ticket.status = FAILED
        else:
            ticket.report = report
            ticket.status = DONE
            if key is not None:
                ticket.cache = "miss"
                cache.store_answer(key, (report.answer, dict(report.details)))
        ticket.finished_at = self.clock.monotonic()

    def _account(self, ticket: Ticket) -> None:
        tenant = ticket.request.tenant
        if ticket.status == DONE:
            self.admission.note_service_time(ticket.service_seconds())
            self.metrics.note_completed(
                tenant,
                ticket.queue_seconds(),
                ticket.service_seconds(),
                ticket.latency_seconds(),
                ticket.report.cardinality,
                ticket.cache,
            )
            try:
                # Standing quota is charged on *answer rows* — an
                # engine-independent, deterministic measure (the same
                # query yields the same charge on every engine).
                self.admission.charge_quota(tenant, ticket.report.cardinality)
            except BudgetExceeded:
                # The answer stands; the tenant's later submits shed.
                pass
        elif ticket.status == FAILED:
            self.metrics.note_failed(tenant)
            if isinstance(ticket.error, BudgetExceeded):
                # Attribute the overrun to the owner stamped on the
                # budget — under fan-out the observing worker may be a
                # sibling, but the owner names the true originator.
                owner = getattr(ticket.error, "owner", None) or ticket.owner
                self.metrics.note_budget_trip(owner.split("/")[0])

    # ------------------------------------------------------------------
    # Observability

    def cache_stats(self) -> Dict[str, dict]:
        return {name: cache.stats() for name, cache in sorted(self._caches.items())}

    def describe(self) -> dict:
        payload = self.metrics.as_dict()
        payload["backlog"] = self.admission.backlog()
        payload["engine"] = self.engine
        payload["snapshots"] = {
            "active_pins": self.snapshots.active_pins,
            "frozen_copies": self.snapshots.frozen_copies,
            "epoch": self.snapshots.epoch,
        }
        return payload


__all__ = ["QueryService"]
