"""The multi-tenant query service front door.

:class:`QueryService` glues the serving stack together on top of one
writer :class:`~repro.core.answerer.QueryAnswerer`:

* **admission** — :meth:`submit` charges each
  :class:`~repro.service.request.QueryRequest` against the tenant's
  bounded queue and standing quota
  (:class:`~repro.service.admission.AdmissionController`), shedding
  past saturation with a typed
  :class:`~repro.service.admission.AdmissionRejected`;
* **execution** — :meth:`step` dequeues up to ``capacity`` tickets in
  weighted-fair order and answers them; :meth:`drain` steps until the
  queues are empty.  Execution is *step-driven* rather than
  thread-driven: the scheduling decisions are taken serially under the
  injected clock, which makes every interleaving a deterministic,
  replayable script (the concurrency test harness drives exactly this
  entry point), while the per-query evaluation itself may still fan
  out on a worker pool;
* **caching** — each tenant owns a private
  :class:`~repro.cache.QueryCache` partition keyed by its own dataset
  token; all partitions watch the one shared store, so a write
  invalidates every tenant's answers at the same epoch (shared-epoch
  invalidation: no tenant can read another tenant's entries, and no
  tenant can read stale data either — unless the brownout ladder has
  *explicitly* opened the stale-while-revalidate window, in which case
  expired entries are served tagged ``stale=True``);
* **snapshot reads** — :meth:`pin` hands out an epoch-pinned
  :class:`~repro.storage.snapshot.StoreSnapshot`; a request carrying
  one is answered by a reader answerer materialized from the pinned
  state, byte-identical no matter what the writer does concurrently;
* **degraded-mode serving** — an optional
  :class:`~repro.service.degrade.BrownoutController` observes per-round
  :class:`~repro.service.health.HealthMonitor` signals and walks the
  degradation ladder; the service derives per-request effective
  budgets, parallelism, partial-answer opt-in, stale-serving, and
  front-door shedding from the current level.  Per-tenant circuit
  breakers shed a pathological tenant's requests at the door before
  its failures can drag the ladder down for everyone else, a watchdog
  bounds every execution's wall-clock via the sibling-abort budget
  machinery, and an optional :class:`~repro.service.chaos.ServiceChaos`
  injects seeded faults inside this very serving loop.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cache import QueryCache, dataset_token
from ..cache.keys import cover_key, query_key
from ..core.answerer import AnswerReport, QueryAnswerer, Strategy
from ..parallel import ExecutorPool
from ..reformulation.engine import ReformulationTooLarge
from ..resilience.clock import Clock, SYSTEM_CLOCK
from ..resilience.errors import BudgetExceeded, EndpointFailure
from ..storage.backends import QueryTooLargeError
from ..storage.snapshot import SnapshotManager, StoreSnapshot
from .admission import (
    AdmissionController,
    AdmissionRejected,
    REASON_BROWNOUT,
    REASON_TENANT_BREAKER,
    TenantConfig,
)
from .chaos import ServiceChaos
from .degrade import BrownoutController, BrownoutPolicy
from .health import DEFAULT_BREAKER_COOLDOWN, DEFAULT_BREAKER_THRESHOLD, HealthMonitor
from .metrics import ServiceMetrics
from .request import DONE, FAILED, RUNNING, QueryRequest, Ticket

#: Exceptions the serving loop absorbs into a FAILED ticket (everything
#: else is a programming error and propagates).
_SERVING_ERRORS = (
    BudgetExceeded,
    ReformulationTooLarge,
    QueryTooLargeError,
    EndpointFailure,
)


class QueryService:
    """A multi-tenant serving layer over one dataset.

    ``tenants`` are :class:`~repro.service.admission.TenantConfig`
    entries (bare names get default weight/depth).  ``capacity`` is how
    many requests one :meth:`step` round executes.  ``pool`` optionally
    fans the round's requests out over an
    :class:`~repro.parallel.ExecutorPool`; accounting is applied in
    deterministic ticket order regardless.  ``clock`` drives every
    timestamp, deadline, and retry-after hint — tests inject a
    :class:`~repro.resilience.clock.FakeClock` and replay identical
    schedules.

    Degraded-mode knobs (all optional):

    * ``brownout`` — ``True`` for the default
      :class:`~repro.service.degrade.BrownoutPolicy`, a policy, or a
      ready :class:`~repro.service.degrade.BrownoutController`;
    * ``watchdog_seconds`` — a hard wall-clock ceiling applied to every
      execution (min'd with the tenant's own time budget) so no single
      reformulation blowup can occupy a slot forever;
    * ``breaker_threshold`` / ``breaker_cooldown`` — per-tenant circuit
      breakers (threshold consecutive failures open the tenant's
      breaker; ``0`` disables).  Enabled by default when ``brownout``
      is set;
    * ``chaos`` — a :class:`~repro.service.chaos.ServiceChaos` whose
      seeded faults are injected per execution and per stale refresh.
    """

    def __init__(
        self,
        graph,
        schema=None,
        *,
        tenants: Sequence[Union[str, TenantConfig]],
        engine: str = "builtin",
        capacity: int = 2,
        clock: Optional[Clock] = None,
        pool: Optional[ExecutorPool] = None,
        cache_answers: int = 512,
        cache_reformulations: int = 128,
        brownout: Union[None, bool, BrownoutPolicy, BrownoutController] = None,
        chaos: Optional[ServiceChaos] = None,
        watchdog_seconds: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        replicas=None,
    ):
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.engine = engine
        self.pool = pool
        #: Optional :class:`~repro.replication.routing.ReplicaRouter`.
        #: When set, writes are mirrored to the replication primary
        #: (fenced writes raise), reads may be offloaded to followers
        #: within each tenant's ``replica_max_lag`` bound, and the
        #: brownout ladder's replica-reads-only rung pushes every
        #: routable read off the primary.  The service's own writer
        #: answerer must be built over the primary's dataset — the
        #: router mirrors, it does not substitute.
        self.replicas = replicas
        self.answerer = QueryAnswerer(graph, schema, engine=engine)
        self.snapshots = SnapshotManager(self.answerer.store)
        configs = [
            t if isinstance(t, TenantConfig) else TenantConfig(t) for t in tenants
        ]
        self.admission = AdmissionController(
            configs, capacity=capacity, clock=self.clock
        )
        self.capacity = capacity
        self.metrics = ServiceMetrics([c.name for c in configs])
        # Degraded-mode serving: ladder, health, chaos, watchdog.
        if brownout is True:
            brownout = BrownoutController(clock=self.clock)
        elif isinstance(brownout, BrownoutPolicy):
            brownout = BrownoutController(brownout, clock=self.clock)
        self.brownout: Optional[BrownoutController] = brownout
        self.chaos = chaos
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise ValueError(
                "watchdog_seconds must be > 0, got %r" % (watchdog_seconds,)
            )
        self.watchdog_seconds = watchdog_seconds
        if breaker_threshold is None and brownout is not None:
            breaker_threshold = DEFAULT_BREAKER_THRESHOLD
        self.health = HealthMonitor(
            [c.name for c in configs],
            total_queue_depth=sum(c.queue_depth for c in configs),
            clock=self.clock,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
        )
        # Stale-while-revalidate bookkeeping: logical keys with a
        # refresh in flight (single-flight), and the FIFO of refreshes
        # step() works through.
        self._refreshing: set = set()
        self._pending_refreshes: List[QueryRequest] = []
        self._refresh_lock = threading.RLock()
        # Per-tenant cache partitions: private entries (one dataset
        # token per tenant keeps keys disjoint even if partitions were
        # ever merged), shared invalidation epochs via the one store.
        self._caches: Dict[str, QueryCache] = {}
        self._tokens: Dict[str, int] = {}
        for config in configs:
            cache = QueryCache(cache_reformulations, cache_answers)
            cache.watch_store(self.answerer.store)
            self._caches[config.name] = cache
            self._tokens[config.name] = dataset_token()
        #: Reader answerers materialized per pinned snapshot epoch,
        #: shared by every request pinned at that epoch.
        self._readers: Dict[int, QueryAnswerer] = {}

    # ------------------------------------------------------------------
    # Front door

    def submit(self, request: QueryRequest) -> Ticket:
        """Admit *request*, or shed it with
        :class:`~repro.service.admission.AdmissionRejected`.

        Health gates run before the admission controller: at
        shed-new-work every submission is refused with a retry-after
        hint, and a tenant whose circuit breaker is open is refused
        until the cooldown elapses.  Neither gate feeds the ladder's
        shed signal — brownout sheds are the *remedy*, and breaker
        sheds are tenant-local quarantine; only genuine queue/quota
        sheds indicate service-wide overload."""
        self.metrics.note_submitted(request.tenant)
        self.health.note_submitted()
        if self.brownout is not None and self.brownout.shed_new_work:
            self.metrics.note_shed(request.tenant, REASON_BROWNOUT)
            raise AdmissionRejected(
                "service degraded to %s; not accepting new work"
                % self.brownout.level_name,
                tenant=request.tenant,
                reason=REASON_BROWNOUT,
                retry_after=self.admission.retry_after(),
                queued=self.admission.backlog(request.tenant),
            )
        breaker = self.health.breaker_for(request.tenant)
        if breaker is not None and not breaker.allow():
            self.metrics.note_shed(request.tenant, REASON_TENANT_BREAKER)
            raise AdmissionRejected(
                "tenant %r circuit open after repeated failures"
                % (request.tenant,),
                tenant=request.tenant,
                reason=REASON_TENANT_BREAKER,
                retry_after=breaker.cooldown_remaining(),
                queued=self.admission.backlog(request.tenant),
                cooldown_remaining=breaker.cooldown_remaining(),
            )
        try:
            ticket = self.admission.submit(request)
        except AdmissionRejected as exc:
            self.metrics.note_shed(request.tenant, exc.reason)
            self.health.note_shed()
            raise
        self.metrics.note_admitted(request.tenant)
        return ticket

    def pin(self) -> StoreSnapshot:
        """An O(1) epoch-pinned snapshot for later snapshot reads."""
        return self.snapshots.pin()

    def release(self, snapshot: StoreSnapshot) -> None:
        """Release *snapshot* and drop its reader once unpinned."""
        epoch = snapshot.epoch
        snapshot.release()
        if epoch in self._readers and not self.snapshots.pinned_at(epoch):
            del self._readers[epoch]

    # ------------------------------------------------------------------
    # Writes (all go through the writer answerer, so the snapshot COW
    # hooks and every tenant's cache invalidation fire on the way)

    def insert(self, triple) -> bool:
        if self.replicas is not None:
            # The primary writes (and ships) first: a fenced write
            # raises here and the serving copy stays untouched.
            self.replicas.insert(triple)
        return self.answerer.insert(triple)

    def delete(self, triple) -> bool:
        if self.replicas is not None:
            self.replicas.delete(triple)
        return self.answerer.delete(triple)

    def load(self, graph) -> int:
        """Bulk-load *graph*'s data triples; returns how many were new."""
        count = 0
        for triple in graph.data_triples():
            if self.replicas is not None:
                self.replicas.insert(triple)
            if self.answerer.insert(triple):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Scheduler

    def step(self) -> List[Ticket]:
        """Run one scheduling round: dequeue up to ``capacity`` tickets
        in weighted-fair order, execute them, account them, work one
        slice of pending stale refreshes, then feed the round's health
        signals to the brownout ladder.  Returns the tickets that left
        the queue this round (done, failed, or expired), in scheduling
        order."""
        if self.replicas is not None:
            # Replication advances in lock-step with serving rounds, so
            # follower catch-up is deterministic relative to the
            # request schedule.
            self.replicas.tick()
        runnable, expired = self.admission.next_batch(self.capacity)
        for ticket in expired:
            self.metrics.note_expired(ticket.request.tenant)
        use_pool = (
            self.pool is not None
            and self.pool.usable()
            and len(runnable) > 1
            and (self.brownout is None or self.brownout.allows_parallelism)
        )
        if use_pool:
            # The pool call only parallelizes evaluation; results land
            # on the tickets, and accounting below runs in scheduling
            # order, so the metrics stream is identical to a serial
            # round.
            self.pool.map(self._execute, runnable)
        else:
            for ticket in runnable:
                self._execute(ticket)
        for ticket in runnable:
            self._account(ticket)
        self._run_refreshes()
        signals = self.health.end_round(self.admission.backlog())
        if self.brownout is not None:
            self.brownout.observe(signals)
        return runnable + expired

    def drain(self, max_steps: int = 10_000) -> List[Ticket]:
        """Step until every queue is empty; returns all finished
        tickets in completion order.  Pending stale refreshes are
        worked to completion too — drain leaves no background work."""
        finished: List[Ticket] = []
        steps = 0
        while self.admission.backlog() > 0 or self._pending_refreshes:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    "drain did not converge after %d steps (backlog %d)"
                    % (max_steps, self.admission.backlog())
                )
            finished.extend(self.step())
        return finished

    # ------------------------------------------------------------------
    # Execution internals

    def _answerer_for(
        self, request: QueryRequest
    ) -> Tuple[QueryAnswerer, bool, Optional[dict]]:
        """The answerer evaluating *request*: the live writer, a
        reader materialized from the request's pinned snapshot (one
        reader per epoch, shared across requests), or a follower
        replica's reader when routing applies.  Returns ``(answerer,
        bypass_cache, replica_info)`` — snapshot and replica reads
        bypass the tenant cache (their freshness is the pin/lag, not
        the epoch)."""
        snapshot = request.snapshot
        if snapshot is None:
            if self.replicas is not None:
                forced = (
                    self.brownout is not None
                    and self.brownout.replica_reads_only
                )
                config = self.admission.tenants.get(request.tenant)
                bound = None if config is None else config.replica_max_lag
                # Route unconditionally: the router counts primary
                # reads (no opt-in, no rung) as well as replica picks.
                routed = self.replicas.route_read(bound, forced=forced)
                if routed is not None:
                    node, lag = routed
                    info = {
                        "node": node.name,
                        "lag": lag,
                        "forced": forced,
                    }
                    return node.reader(self.engine), True, info
            return self.answerer, False, None
        reader = self._readers.get(snapshot.epoch)
        if reader is None:
            store = snapshot.store()
            reader = QueryAnswerer(
                store.to_graph(), store.schema, engine=self.engine
            )
            self._readers[snapshot.epoch] = reader
        return reader, True, None

    def _answer_cache_key(
        self,
        cache: QueryCache,
        request: QueryRequest,
        answerer: QueryAnswerer,
        data_epoch: Optional[int] = None,
    ):
        return cache.answer_key(
            self._tokens[request.tenant],
            request.query,
            answerer.schema,
            answerer.policy,
            request.strategy.value,
            cover=request.cover if request.strategy is Strategy.REF_JUCQ else None,
            extra=("service", self.engine),
            data_epoch=data_epoch,
        )

    def _budget_kwargs(self, config: TenantConfig, owner: str, degrade: bool) -> dict:
        """The budget kwargs for one execution: the tenant's configured
        budgets, tightened by the ladder when *degrade* is set, then
        capped by the watchdog's hard wall-clock ceiling."""
        row_budget = config.request_rows
        time_budget = config.request_seconds
        if degrade and self.brownout is not None:
            row_budget, time_budget = self.brownout.effective_budgets(
                row_budget, time_budget
            )
        if self.watchdog_seconds is not None and self.engine != "sqlite":
            time_budget = (
                self.watchdog_seconds
                if time_budget is None
                else min(time_budget, self.watchdog_seconds)
            )
        if row_budget is None and time_budget is None:
            return {}
        return {
            "row_budget": row_budget,
            "time_budget": time_budget,
            "budget_owner": owner,
        }

    def _execute(self, ticket: Ticket) -> None:
        request = ticket.request
        ticket.status = RUNNING
        ticket.started_at = self.clock.monotonic()
        config = self.admission.tenants[request.tenant]
        answerer, pinned, replica = self._answerer_for(request)
        cache = None if pinned else self._caches.get(request.tenant)
        key = None
        if cache is not None:
            key = self._answer_cache_key(cache, request, answerer)
            hit = cache.lookup_answer(key)
            if hit is not None:
                answer, details = hit
                ticket.cache = "hit"
                ticket.status = DONE
                ticket.finished_at = self.clock.monotonic()
                details = dict(details)
                details["cache"] = {"answer": "hit", "tenant": request.tenant}
                ticket.report = AnswerReport(
                    request.strategy,
                    answer,
                    ticket.finished_at - ticket.started_at,
                    details,
                )
                return
            if self.brownout is not None and self.brownout.serve_stale:
                if self._serve_stale(ticket, cache, request, answerer):
                    return
        kwargs = self._budget_kwargs(config, ticket.owner, degrade=True)
        if self.brownout is not None and self.brownout.allow_partial:
            # Only the pipelined and columnar engines carry partial
            # rows on the exception; elsewhere the flag is a harmless
            # no-op and the overrun still fails the ticket.
            kwargs["allow_partial"] = True
        try:
            if self.chaos is not None:
                self.chaos.maybe_fail("request %s" % ticket.owner)
            report = answerer.answer(
                request.query,
                request.strategy,
                cover=request.cover,
                **kwargs,
            )
        except _SERVING_ERRORS as exc:
            ticket.error = exc
            ticket.status = FAILED
        else:
            if replica is not None:
                report.details["replica"] = replica
                if replica["lag"] > 0:
                    # A bounded-staleness read: flagged exactly like a
                    # stale cache serve, so clients can tell.
                    report.details.setdefault(
                        "stale", {"replica_lag": replica["lag"]}
                    )
            ticket.report = report
            ticket.status = DONE
            if key is not None:
                ticket.cache = "miss"
                if not report.details.get("partial"):
                    # Degraded partials are never written back: the
                    # cache holds only full answers, so later readers
                    # (and stale-serving) can trust every entry.
                    cache.store_answer(key, (report.answer, dict(report.details)))
        ticket.finished_at = self.clock.monotonic()

    # ------------------------------------------------------------------
    # Stale-while-revalidate

    def _refresh_key(self, request: QueryRequest):
        """The single-flight identity of a refresh: epoch-independent,
        so one refresh is in flight per logical query per tenant no
        matter how many stale serves it backs."""
        return (
            request.tenant,
            request.strategy.value,
            query_key(request.query),
            None if request.cover is None else cover_key(request.cover),
        )

    def _serve_stale(
        self,
        ticket: Ticket,
        cache: QueryCache,
        request: QueryRequest,
        answerer: QueryAnswerer,
    ) -> bool:
        """Serve an expired cache entry if one is still reachable.

        Epoch invalidation is lazy — superseded entries linger in the
        LRU — so probing the previous ``stale_max_epochs`` data epochs'
        keys finds answers invalidated by recent writes.  A hit is
        served tagged ``stale=True`` (age included) and a single-flight
        background refresh is scheduled; anything older than the window
        is unreachable, so a stale serve never outlives the next epoch
        beyond the policy's bound."""
        policy = self.brownout.policy
        current_epoch = cache.data_epoch
        for age in range(1, policy.stale_max_epochs + 1):
            epoch = current_epoch - age
            if epoch < 0:
                break
            stale_key = self._answer_cache_key(
                cache, request, answerer, data_epoch=epoch
            )
            hit = cache.lookup_answer(stale_key)
            if hit is None:
                continue
            answer, details = hit
            scheduled = self._schedule_refresh(request)
            ticket.cache = "stale"
            ticket.status = DONE
            ticket.finished_at = self.clock.monotonic()
            details = dict(details)
            details["stale"] = {
                "age_epochs": age,
                "served_epoch": epoch,
                "current_epoch": current_epoch,
                "refresh_scheduled": scheduled,
            }
            details["cache"] = {"answer": "stale", "tenant": request.tenant}
            ticket.report = AnswerReport(
                request.strategy,
                answer,
                ticket.finished_at - ticket.started_at,
                details,
            )
            return True
        return False

    def _schedule_refresh(self, request: QueryRequest) -> bool:
        """Queue a background recompute for *request*'s logical query;
        single-flight per :meth:`_refresh_key`."""
        logical = self._refresh_key(request)
        with self._refresh_lock:
            if logical in self._refreshing:
                return False
            self._refreshing.add(logical)
            self._pending_refreshes.append(request)
            return True

    def _run_refreshes(self) -> None:
        """Work up to ``refreshes_per_round`` pending refreshes.  A
        successful recompute stores a genuinely fresh entry (current
        epochs); a failure releases the single-flight guard so a later
        stale serve can retry — and feeds the health monitor's refresh
        canary, which is what holds the ladder down while the fault
        persists."""
        if self.brownout is None:
            return
        quota = self.brownout.policy.refreshes_per_round
        while quota > 0 and self._pending_refreshes:
            quota -= 1
            with self._refresh_lock:
                if not self._pending_refreshes:
                    break
                request = self._pending_refreshes.pop(0)
            logical = self._refresh_key(request)
            config = self.admission.tenants.get(request.tenant)
            ok = False
            try:
                if self.chaos is not None:
                    self.chaos.maybe_fail("refresh %s" % (request.tenant,))
                kwargs = (
                    self._budget_kwargs(
                        config, "%s/refresh" % request.tenant, degrade=False
                    )
                    if config is not None
                    else {}
                )
                report = self.answerer.answer(
                    request.query,
                    request.strategy,
                    cover=request.cover,
                    **kwargs,
                )
            except _SERVING_ERRORS:
                ok = False
            else:
                ok = True
                cache = self._caches.get(request.tenant)
                if cache is not None and not report.details.get("partial"):
                    key = self._answer_cache_key(cache, request, self.answerer)
                    cache.store_answer(key, (report.answer, dict(report.details)))
            finally:
                with self._refresh_lock:
                    self._refreshing.discard(logical)
            self.health.note_refresh(ok)
            self.metrics.note_refresh(request.tenant, ok)

    # ------------------------------------------------------------------
    # Accounting

    def _account(self, ticket: Ticket) -> None:
        tenant = ticket.request.tenant
        if ticket.status == DONE:
            self.admission.note_service_time(ticket.service_seconds())
            stale = ticket.cache == "stale"
            degraded = ticket.degraded
            self.metrics.note_completed(
                tenant,
                ticket.queue_seconds(),
                ticket.service_seconds(),
                ticket.latency_seconds(),
                ticket.report.cardinality,
                ticket.cache,
                degraded=degraded,
            )
            self.health.note_completed(
                tenant,
                ticket.latency_seconds(),
                stale=stale,
                degraded=degraded,
            )
            try:
                # Standing quota is charged on *answer rows* — an
                # engine-independent, deterministic measure (the same
                # query yields the same charge on every engine).
                self.admission.charge_quota(tenant, ticket.report.cardinality)
            except BudgetExceeded:
                # The answer stands; the tenant's later submits shed.
                pass
        elif ticket.status == FAILED:
            self.metrics.note_failed(tenant, reason=type(ticket.error).__name__)
            self.health.note_failure(tenant)
            if isinstance(ticket.error, BudgetExceeded):
                # Attribute the overrun to the owner stamped on the
                # budget — under fan-out the observing worker may be a
                # sibling, but the owner names the true originator.
                owner = getattr(ticket.error, "owner", None) or ticket.owner
                self.metrics.note_budget_trip(
                    owner.split("/")[0],
                    owner=owner,
                    kind=getattr(ticket.error, "kind", None),
                )

    # ------------------------------------------------------------------
    # Observability

    def cache_stats(self) -> Dict[str, dict]:
        return {name: cache.stats() for name, cache in sorted(self._caches.items())}

    def health_report(self) -> dict:
        """The JSON-ready health section: ladder state, per-tenant
        breakers, EWMAs, stale/shed counters, chaos injections."""
        payload = {
            "monitor": self.health.as_dict(),
            "breakers": {
                name: breaker.as_dict()
                for name, breaker in sorted(self.health.breakers.items())
            },
            "watchdog_seconds": self.watchdog_seconds,
            "pending_refreshes": len(self._pending_refreshes),
        }
        if self.brownout is not None:
            payload["brownout"] = self.brownout.as_dict()
        if self.chaos is not None:
            payload["chaos"] = self.chaos.as_dict()
        return payload

    def describe(self) -> dict:
        payload = self.metrics.as_dict()
        payload["backlog"] = self.admission.backlog()
        payload["engine"] = self.engine
        payload["snapshots"] = {
            "active_pins": self.snapshots.active_pins,
            "frozen_copies": self.snapshots.frozen_copies,
            "epoch": self.snapshots.epoch,
        }
        payload["health"] = self.health_report()
        if self.replicas is not None:
            payload["replicas"] = self.replicas.status()
        return payload


__all__ = ["QueryService"]
