"""Admission control: bounded queues, weighted fair dequeue, shedding.

The controller is the service's only gate.  Each tenant gets

* a **bounded queue** (``queue_depth``) — a full queue sheds the new
  request with a :class:`AdmissionRejected` carrying a retry-after
  hint instead of letting the backlog grow without bound;
* a **scheduling weight** — dequeue order follows stride scheduling
  (Waldspurger & Weihl, OSDI '94): each tenant carries a *pass* value
  advanced by ``SCALE / weight`` per dequeue, and the runnable tenant
  with the minimum pass goes next (ties broken by tenant name, so the
  whole schedule is deterministic).  Over any window, tenant throughput
  is proportional to weight, and no backlogged tenant starves;
* an optional **standing quota** (``quota_rows`` / ``quota_seconds``)
  charged as answers complete — an exhausted quota sheds *future*
  requests at the front door rather than cancelling admitted work.

Everything is driven by an injected clock, so tests replay identical
schedules with :class:`~repro.resilience.clock.FakeClock`.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..resilience.budget import ExecutionBudget
from ..resilience.clock import Clock, SYSTEM_CLOCK
from .request import EXPIRED, QueryRequest, Ticket

#: Stride numerator: pass += SCALE / weight per dequeue.
SCALE = 1 << 16

#: The service-time prior (seconds) used for retry-after hints before
#: any request has completed.
DEFAULT_SERVICE_SECONDS = 0.05

#: Rejection reason codes.
REASON_UNKNOWN_TENANT = "unknown-tenant"
REASON_QUEUE_FULL = "queue-full"
REASON_QUOTA_EXHAUSTED = "quota-exhausted"
#: Shed by the brownout ladder at shed-new-work (service-wide).
REASON_BROWNOUT = "brownout-shed"
#: Shed because the tenant's own circuit breaker is open.
REASON_TENANT_BREAKER = "breaker-open"


class TenantConfig:
    """One tenant's admission contract."""

    def __init__(
        self,
        name: str,
        weight: float = 1.0,
        queue_depth: int = 8,
        request_rows: Optional[int] = None,
        request_seconds: Optional[float] = None,
        quota_rows: Optional[int] = None,
        quota_seconds: Optional[float] = None,
        replica_max_lag: Optional[int] = None,
    ):
        if not name:
            raise ValueError("tenant name must be non-empty")
        if weight <= 0:
            raise ValueError("weight must be > 0, got %r" % (weight,))
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1, got %r" % (queue_depth,))
        if replica_max_lag is not None and replica_max_lag < 0:
            raise ValueError(
                "replica_max_lag must be >= 0, got %r" % (replica_max_lag,))
        self.name = name
        self.weight = weight
        self.queue_depth = queue_depth
        #: Per-request evaluation budget (rows / seconds), stamped with
        #: the request's owner label for attribution.
        self.request_rows = request_rows
        self.request_seconds = request_seconds
        #: Standing quota across all of the tenant's completed answers.
        self.quota_rows = quota_rows
        self.quota_seconds = quota_seconds
        #: Bounded staleness for replica reads: the largest LSN lag a
        #: follower may have and still serve this tenant's reads.  None
        #: keeps the tenant's reads on the primary until the brownout
        #: ladder forces replica-reads-only; 0 allows replica reads
        #: only from fully caught-up followers.
        self.replica_max_lag = replica_max_lag

    @classmethod
    def parse(cls, spec: str) -> "TenantConfig":
        """Parse a CLI ``name[:weight[:depth[:maxlag]]]`` spec (the
        fourth field is the replica-read staleness bound in LSNs)."""
        parts = spec.split(":")
        if len(parts) > 4 or not parts[0]:
            raise ValueError(
                "expected name[:weight[:depth[:maxlag]]], got %r" % (spec,))
        name = parts[0]
        weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        depth = int(parts[2]) if len(parts) > 2 and parts[2] else 8
        max_lag = int(parts[3]) if len(parts) > 3 and parts[3] else None
        return cls(name, weight=weight, queue_depth=depth,
                   replica_max_lag=max_lag)

    def __repr__(self) -> str:
        return "TenantConfig(%s, weight=%g, depth=%d)" % (
            self.name,
            self.weight,
            self.queue_depth,
        )


class AdmissionRejected(RuntimeError):
    """A request shed at the front door (never silently dropped).

    ``reason`` is one of :data:`REASON_UNKNOWN_TENANT`,
    :data:`REASON_QUEUE_FULL`, :data:`REASON_QUOTA_EXHAUSTED`;
    ``retry_after`` (seconds) is the controller's backlog-derived hint
    for when capacity is expected to free up (None when retrying cannot
    help, e.g. an unknown tenant).
    """

    def __init__(
        self,
        message: str,
        tenant: str,
        reason: str,
        retry_after: Optional[float] = None,
        queued: int = 0,
        cooldown_remaining: Optional[float] = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after = retry_after
        self.queued = queued
        #: For breaker sheds: how long the tenant's circuit stays open
        #: (distinct from ``retry_after``, which estimates queue drain).
        self.cooldown_remaining = cooldown_remaining

    def diagnostics(self) -> dict:
        payload = {
            "tenant": self.tenant,
            "reason": self.reason,
            "queued": self.queued,
        }
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        if self.cooldown_remaining is not None:
            payload["cooldown_remaining"] = self.cooldown_remaining
        return payload


class AdmissionController:
    """Bounded-queue, weighted-fair admission for one service.

    ``capacity`` is the executor-side width: :meth:`next_batch` hands
    out at most that many runnable tickets per scheduling round, and
    retry-after hints assume the backlog drains ``capacity`` requests
    per estimated service time.
    """

    def __init__(
        self,
        tenants: Sequence[TenantConfig],
        capacity: int = 2,
        clock: Optional[Clock] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % (capacity,))
        if not tenants:
            raise ValueError("at least one tenant is required")
        self.capacity = capacity
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.tenants: Dict[str, TenantConfig] = {}
        self._queues: Dict[str, List[Ticket]] = {}
        self._passes: Dict[str, float] = {}
        self._quotas: Dict[str, Optional[ExecutionBudget]] = {}
        for config in tenants:
            if config.name in self.tenants:
                raise ValueError("duplicate tenant %r" % (config.name,))
            self.tenants[config.name] = config
            self._queues[config.name] = []
            self._passes[config.name] = 0.0
            if config.quota_rows is not None or config.quota_seconds is not None:
                self._quotas[config.name] = ExecutionBudget(
                    max_rows=config.quota_rows,
                    max_seconds=config.quota_seconds,
                    clock=self.clock,
                    owner=config.name,
                )
            else:
                self._quotas[config.name] = None
        self._virtual = 0.0
        self._sequence = itertools.count(1)
        self._service_ewma: Optional[float] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Front door

    def submit(self, request: QueryRequest) -> Ticket:
        """Admit *request* or raise :class:`AdmissionRejected`."""
        with self._lock:
            config = self.tenants.get(request.tenant)
            if config is None:
                raise AdmissionRejected(
                    "unknown tenant %r" % (request.tenant,),
                    tenant=request.tenant,
                    reason=REASON_UNKNOWN_TENANT,
                )
            quota = self._quotas.get(request.tenant)
            if quota is not None and quota.tripped:
                raise AdmissionRejected(
                    "tenant %r quota exhausted" % (request.tenant,),
                    tenant=request.tenant,
                    reason=REASON_QUOTA_EXHAUSTED,
                    queued=len(self._queues[request.tenant]),
                )
            queue = self._queues[request.tenant]
            if len(queue) >= config.queue_depth:
                raise AdmissionRejected(
                    "tenant %r queue full (%d queued, depth %d)"
                    % (request.tenant, len(queue), config.queue_depth),
                    tenant=request.tenant,
                    reason=REASON_QUEUE_FULL,
                    retry_after=self.retry_after(),
                    queued=len(queue),
                )
            if not queue:
                # A tenant re-entering the runnable set resumes at the
                # current virtual time: idleness banks no credit.
                self._passes[request.tenant] = max(
                    self._passes[request.tenant], self._virtual
                )
            ticket = Ticket(request, next(self._sequence), self.clock.monotonic())
            queue.append(ticket)
            return ticket

    # ------------------------------------------------------------------
    # Scheduler side

    def next_batch(self, limit: Optional[int] = None) -> Tuple[List[Ticket], List[Ticket]]:
        """Dequeue up to ``limit`` (default: capacity) runnable tickets
        in weighted-fair order; deadline-lapsed tickets are marked
        :data:`~repro.service.request.EXPIRED` and returned separately
        (they consume no executor slot and charge no pass)."""
        if limit is None:
            limit = self.capacity
        runnable: List[Ticket] = []
        expired: List[Ticket] = []
        with self._lock:
            now = self.clock.monotonic()
            while len(runnable) < limit:
                tenant = self._min_pass_tenant()
                if tenant is None:
                    break
                ticket = self._pop_best(tenant)
                if (
                    ticket.request.deadline is not None
                    and now - ticket.arrived_at > ticket.request.deadline
                ):
                    ticket.status = EXPIRED
                    ticket.finished_at = now
                    expired.append(ticket)
                    continue
                self._virtual = self._passes[tenant]
                self._passes[tenant] += SCALE / self.tenants[tenant].weight
                runnable.append(ticket)
        return runnable, expired

    def _min_pass_tenant(self) -> Optional[str]:
        best = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            key = (self._passes[name], name)
            if best is None or key < best[0]:
                best = (key, name)
        return None if best is None else best[1]

    def _pop_best(self, tenant: str) -> Ticket:
        queue = self._queues[tenant]
        index = min(
            range(len(queue)),
            key=lambda i: (-queue[i].request.priority, queue[i].sequence),
        )
        return queue.pop(index)

    # ------------------------------------------------------------------
    # Accounting feedback

    def note_service_time(self, seconds: float) -> None:
        """Fold one completed request's service time into the EWMA the
        retry-after hint is derived from."""
        with self._lock:
            if self._service_ewma is None:
                self._service_ewma = seconds
            else:
                self._service_ewma = 0.7 * self._service_ewma + 0.3 * seconds

    def charge_quota(self, tenant: str, rows: int) -> None:
        """Charge *rows* answer rows against the tenant's standing
        quota.  Raises :class:`~repro.resilience.errors.BudgetExceeded`
        when the quota trips — the *current* answer stands, but every
        later :meth:`submit` sheds with
        :data:`REASON_QUOTA_EXHAUSTED`."""
        with self._lock:
            quota = self._quotas.get(tenant)
        if quota is not None:
            quota.charge_rows(max(1, rows), operator="service-quota")

    def quota_exhausted(self, tenant: str) -> bool:
        quota = self._quotas.get(tenant)
        return quota is not None and quota.tripped

    def backlog(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                return len(self._queues.get(tenant, ()))
            return sum(len(queue) for queue in self._queues.values())

    def retry_after(self) -> float:
        """Expected seconds until a queue slot frees: backlog rounds at
        ``capacity`` per round, each round costing the observed (or
        prior) per-request service time."""
        estimate = (
            self._service_ewma
            if self._service_ewma is not None
            else DEFAULT_SERVICE_SECONDS
        )
        rounds = (self.backlog() // self.capacity) + 1
        return rounds * estimate

    def queued_tickets(self) -> List[Ticket]:
        """All queued tickets, admission-ordered (diagnostics)."""
        with self._lock:
            tickets = [t for q in self._queues.values() for t in q]
        return sorted(tickets, key=lambda t: t.sequence)

    def __repr__(self) -> str:
        return "AdmissionController(tenants=%d, backlog=%d, capacity=%d)" % (
            len(self.tenants),
            self.backlog(),
            self.capacity,
        )


__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "DEFAULT_SERVICE_SECONDS",
    "REASON_BROWNOUT",
    "REASON_QUEUE_FULL",
    "REASON_QUOTA_EXHAUSTED",
    "REASON_TENANT_BREAKER",
    "REASON_UNKNOWN_TENANT",
    "SCALE",
    "TenantConfig",
]
