"""Multi-tenant query serving: admission control, fair scheduling,
per-tenant cache partitions, snapshot reads, and degraded-mode
serving (S13, S24).

The paper's engine answers one query at a time; this package makes it
a *service*: several tenants share one dataset and one executor, each
behind a bounded queue with a scheduling weight and optional standing
quotas, while epoch-pinned snapshots keep in-flight readers isolated
from concurrent bulk loads and saturation rounds.  Under faults or
overload an optional brownout controller walks an explicit degradation
ladder — dropping parallelism, tightening budgets into flagged partial
answers, serving stale cache entries while refreshes revalidate,
pushing reads onto follower replicas, and finally shedding new work —
and recovers level by level as per-round health signals clear.  With a
:class:`~repro.replication.routing.ReplicaRouter` attached, writes go
to the replication primary and reads may be served by followers within
each tenant's bounded-staleness contract.
"""

from .admission import (
    AdmissionController,
    AdmissionRejected,
    REASON_BROWNOUT,
    REASON_QUEUE_FULL,
    REASON_QUOTA_EXHAUSTED,
    REASON_TENANT_BREAKER,
    REASON_UNKNOWN_TENANT,
    TenantConfig,
)
from .chaos import ServiceChaos
from .degrade import (
    BrownoutController,
    BrownoutPolicy,
    LEVEL_NAMES,
    NORMAL,
    NO_PARALLELISM,
    PARTIAL_ANSWERS,
    REPLICA_READS_ONLY,
    SHED_NEW_WORK,
    STALE_SERVING,
)
from .health import HealthMonitor, HealthSignals
from .metrics import ServiceMetrics, TenantMetrics, percentile
from .request import DONE, EXPIRED, FAILED, QUEUED, RUNNING, QueryRequest, Ticket
from .service import QueryService

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BrownoutController",
    "BrownoutPolicy",
    "DONE",
    "EXPIRED",
    "FAILED",
    "HealthMonitor",
    "HealthSignals",
    "LEVEL_NAMES",
    "NORMAL",
    "NO_PARALLELISM",
    "PARTIAL_ANSWERS",
    "QUEUED",
    "QueryRequest",
    "QueryService",
    "REASON_BROWNOUT",
    "REASON_QUEUE_FULL",
    "REASON_QUOTA_EXHAUSTED",
    "REASON_TENANT_BREAKER",
    "REASON_UNKNOWN_TENANT",
    "REPLICA_READS_ONLY",
    "RUNNING",
    "SHED_NEW_WORK",
    "STALE_SERVING",
    "ServiceChaos",
    "ServiceMetrics",
    "TenantConfig",
    "TenantMetrics",
    "Ticket",
    "percentile",
]
