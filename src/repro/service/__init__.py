"""Multi-tenant query serving: admission control, fair scheduling,
per-tenant cache partitions, and snapshot reads (S13).

The paper's engine answers one query at a time; this package makes it
a *service*: several tenants share one dataset and one executor, each
behind a bounded queue with a scheduling weight and optional standing
quotas, while epoch-pinned snapshots keep in-flight readers isolated
from concurrent bulk loads and saturation rounds.
"""

from .admission import (
    AdmissionController,
    AdmissionRejected,
    REASON_QUEUE_FULL,
    REASON_QUOTA_EXHAUSTED,
    REASON_UNKNOWN_TENANT,
    TenantConfig,
)
from .metrics import ServiceMetrics, TenantMetrics, percentile
from .request import DONE, EXPIRED, FAILED, QUEUED, RUNNING, QueryRequest, Ticket
from .service import QueryService

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "DONE",
    "EXPIRED",
    "FAILED",
    "QUEUED",
    "QueryRequest",
    "QueryService",
    "REASON_QUEUE_FULL",
    "REASON_QUOTA_EXHAUSTED",
    "REASON_UNKNOWN_TENANT",
    "RUNNING",
    "ServiceMetrics",
    "TenantConfig",
    "TenantMetrics",
    "Ticket",
    "percentile",
]
