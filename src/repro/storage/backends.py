"""Backend profiles: the stand-ins for the paper's three RDBMSs.

The demo answers queries "through three well-established RDBMSs"
(Section 5).  The phenomena it showcases are engine-independent —
reformulation size blow-ups, intermediate-result sizes, cover-dependent
runtimes — but engines differ in join algorithms, in the constant
factors of their cost models, and in how large a query they accept
(the 318,096-CQ UCQ "could not even be parsed").  A
:class:`BackendProfile` captures exactly those degrees of freedom, so
experiment E4 can run every strategy on three distinct (simulated)
platforms.
"""

from __future__ import annotations


class QueryTooLargeError(RuntimeError):
    """The backend refuses to parse/plan a query this large.

    Reproduces the paper's parse failure on huge UCQ reformulations.
    """

    def __init__(self, atom_count: int, limit: int, backend: str):
        super().__init__(
            "backend %r cannot parse a query with %d atoms (limit %d)"
            % (backend, atom_count, limit)
        )
        self.atom_count = atom_count
        self.limit = limit
        self.backend = backend


class BackendProfile:
    """One simulated RDBMS: join preference, cost constants, limits.

    ``join_algorithm``    — 'hash', 'merge' or 'nested_loop';
    ``max_query_atoms``   — parser/planner limit on total atom count;
    ``io_cost``           — cost units per tuple read from a base index;
    ``cpu_cost``          — cost units per tuple processed by an operator;
    ``hash_build_cost``   — extra per-tuple cost of building a hash table;
    ``sort_cost_factor``  — multiplier on n·log₂(n) for sorting (merge join);
    ``dedup_cost``        — per-tuple cost of duplicate elimination;
    ``exact_constant_stats`` — estimate bound-constant scans from exact
                          per-value frequencies (MCV-style) instead of
                          the textbook uniformity assumption.  Default
                          False: the paper computes costs "based on
                          database textbook formulas", and ablation A1
                          shows the sharper micro-estimates can strand
                          the greedy search in a local optimum.
    """

    __slots__ = (
        "name",
        "join_algorithm",
        "max_query_atoms",
        "io_cost",
        "cpu_cost",
        "hash_build_cost",
        "sort_cost_factor",
        "dedup_cost",
        "exact_constant_stats",
    )

    def __init__(
        self,
        name: str,
        join_algorithm: str = "hash",
        max_query_atoms: int = 100_000,
        io_cost: float = 1.0,
        cpu_cost: float = 0.1,
        hash_build_cost: float = 0.2,
        sort_cost_factor: float = 0.05,
        dedup_cost: float = 0.15,
        exact_constant_stats: bool = False,
    ):
        if join_algorithm not in ("hash", "merge", "nested_loop"):
            raise ValueError("unknown join algorithm %r" % join_algorithm)
        self.name = name
        self.join_algorithm = join_algorithm
        self.max_query_atoms = max_query_atoms
        self.io_cost = io_cost
        self.cpu_cost = cpu_cost
        self.hash_build_cost = hash_build_cost
        self.sort_cost_factor = sort_cost_factor
        self.dedup_cost = dedup_cost
        self.exact_constant_stats = exact_constant_stats

    def check_parse_limit(self, atom_count: int) -> None:
        if atom_count > self.max_query_atoms:
            raise QueryTooLargeError(atom_count, self.max_query_atoms, self.name)

    def __repr__(self) -> str:
        return "BackendProfile(%r, join=%s)" % (self.name, self.join_algorithm)


#: Hash-join engine with a generous optimizer — the PostgreSQL-class
#: profile the paper's numbers were measured on.
HASH_BACKEND = BackendProfile("hashdb", join_algorithm="hash")

#: Sort/merge-join engine: pays n·log n per input but joins cheaply.
MERGE_BACKEND = BackendProfile(
    "sortdb",
    join_algorithm="merge",
    io_cost=0.9,
    cpu_cost=0.12,
    sort_cost_factor=0.06,
    max_query_atoms=60_000,
)

#: Index-nested-loop engine with a stricter parser: the profile on
#: which large unions fail earliest.
LOOP_BACKEND = BackendProfile(
    "loopdb",
    join_algorithm="nested_loop",
    io_cost=1.2,
    cpu_cost=0.08,
    max_query_atoms=20_000,
)

DEFAULT_BACKENDS = (HASH_BACKEND, MERGE_BACKEND, LOOP_BACKEND)
