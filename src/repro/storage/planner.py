"""Compiling queries to physical plans.

The planner turns CQs, UCQs and JUCQs into plan trees over a
:class:`~repro.storage.store.TripleStore`, mimicking what the paper's
RDBMSs do with the SQL the reformulations translate to:

* **CQ** — one scan per atom; greedy cardinality-driven left-deep join
  ordering that avoids cross products while a connected choice exists;
  joins use the backend's algorithm; projection to the head.
* **UCQ** — the disjunct plans under a deduplicating union.
* **JUCQ** — fragment UCQ plans joined on their shared variables (in
  greedy cardinality order), projected on the query head, distinct.

The backend's parse limit is enforced *before* planning, on the total
atom count — large UCQ reformulations must fail the way they failed
the paper's engines, without first paying plan construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..cost.model import annotate_plan
from ..query.algebra import (
    ConjunctiveQuery,
    HeadTerm,
    JoinOfUnions,
    TriplePattern,
    UnionQuery,
    Variable,
)
from .backends import BackendProfile, HASH_BACKEND
from .plan import (
    ColumnLabel,
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    PositionSpec,
    ProjectNode,
    ProjectionSpec,
    ScanNode,
    UnionNode,
)
from .store import TripleStore

#: Any query form the planner accepts.
PlannableQuery = Union[ConjunctiveQuery, UnionQuery, JoinOfUnions]


def query_atom_total(query: PlannableQuery) -> int:
    """The parse-relevant size of a query: its total atom count."""
    if isinstance(query, ConjunctiveQuery):
        return len(query.atoms)
    if isinstance(query, UnionQuery):
        return query.atom_count()
    if isinstance(query, JoinOfUnions):
        return query.atom_count()
    raise TypeError("not a plannable query: %r" % (query,))


class Planner:
    """Builds annotated physical plans for one store + backend pair.

    With ``annotate=False`` the planner skips cost annotation and
    produces purely syntactic plans (scans in atom order, since every
    estimate ties at zero and the greedy order is stable) — the cheap
    mode the SQL lowering uses, where the target RDBMS replans anyway.
    """

    def __init__(
        self,
        store: TripleStore,
        backend: BackendProfile = HASH_BACKEND,
        annotate: bool = True,
    ):
        self.store = store
        self.backend = backend
        self.annotate = annotate

    # ------------------------------------------------------------------
    # Entry point

    def plan(self, query: PlannableQuery) -> PlanNode:
        """Plan any query form, enforcing the backend's parse limit."""
        self.backend.check_parse_limit(query_atom_total(query))
        if isinstance(query, ConjunctiveQuery):
            node = self._plan_cq(query)
        elif isinstance(query, UnionQuery):
            node = self._plan_ucq(query, self._head_labels(query.disjuncts[0].head))
        elif isinstance(query, JoinOfUnions):
            node = self._plan_jucq(query)
        else:
            raise TypeError("cannot plan %r" % (query,))
        return self._annotate(node)

    def _annotate(self, node: PlanNode) -> PlanNode:
        if not self.annotate:
            return node
        return annotate_plan(
            node, self.store.statistics, self.backend, self.store.type_property_id
        )

    # ------------------------------------------------------------------
    # CQ planning

    def _scan_for_atom(self, atom: TriplePattern) -> Optional[ScanNode]:
        """The scan node for one atom, or None when a constant is
        absent from the dictionary (the atom cannot match)."""
        from ..encoding.hierarchy import HierarchyInterval

        positions: List[PositionSpec] = []
        intervals: List[HierarchyInterval] = []
        for term in atom.as_tuple():
            if isinstance(term, Variable):
                positions.append(("var", term))
            elif isinstance(term, HierarchyInterval):
                # The hierarchy-encoded interval atom: a half-open id
                # range predicate on this position.
                positions.append(("range", (term.lo, term.hi)))
                intervals.append(term)
            else:
                term_id = self.store.term_id(term)
                if term_id is None:
                    return None
                positions.append(("const", term_id))
        scan = ScanNode(positions)
        if intervals:
            # Observability payload for explain/--show-metrics: what
            # the range stands for and how many union branches it
            # replaced.
            scan.interval_info = [
                (term.lo, term.hi, term.anchor, term.branches)
                for term in intervals
            ]
        return scan

    def _projection_specs(self, head: Sequence[HeadTerm]) -> List[ProjectionSpec]:
        specs: List[ProjectionSpec] = []
        for item in head:
            if isinstance(item, Variable):
                specs.append(("var", item))
            elif (term_id := self.store.dictionary.lookup(item)) is not None:
                specs.append(("const", term_id))
            else:
                # A head constant the data never stored: emit the term
                # itself rather than encoding it — answering a query
                # must never grow the dictionary.
                specs.append(("term", item))
        return specs

    def _head_labels(self, head: Sequence[HeadTerm]) -> List[ColumnLabel]:
        return [item if isinstance(item, Variable) else None for item in head]

    def _plan_cq(self, query: ConjunctiveQuery) -> PlanNode:
        scans: List[ScanNode] = []
        for atom in query.atoms:
            scan = self._scan_for_atom(atom)
            if scan is None:
                return EmptyNode(self._head_labels(query.head))
            self._annotate(scan)
            scans.append(scan)

        ordered = self._order_scans(scans)
        current: PlanNode = ordered[0]
        for scan in ordered[1:]:
            current = JoinNode(current, scan, self.backend.join_algorithm)
            self._annotate(current)
        if query.nonliteral_variables:
            current = NonLiteralFilterNode(
                current, sorted(query.nonliteral_variables)
            )
            self._annotate(current)
        project = ProjectNode(current, self._projection_specs(query.head))
        return project

    def _order_scans(self, scans: List[ScanNode]) -> List[PlanNode]:
        """Greedy left-deep order: start from the cheapest scan, then
        repeatedly add the cheapest scan connected to the variables
        seen so far (falling back to a cross product only when no scan
        connects)."""
        remaining = list(scans)
        remaining.sort(key=lambda scan: scan.estimated_rows)
        ordered: List[PlanNode] = [remaining.pop(0)]
        bound = set(ordered[0].variable_positions())
        while remaining:
            connected = [
                scan
                for scan in remaining
                if bound & set(scan.variable_positions())
            ]
            pool = connected if connected else remaining
            best = min(pool, key=lambda scan: scan.estimated_rows)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best.variable_positions())
        return ordered

    # ------------------------------------------------------------------
    # UCQ planning

    def _plan_ucq(
        self, query: UnionQuery, labels: Sequence[ColumnLabel]
    ) -> PlanNode:
        children = [self._plan_cq(disjunct) for disjunct in query.disjuncts]
        for child in children:
            self._annotate(child)
        union = UnionNode(children, labels)
        return union

    # ------------------------------------------------------------------
    # JUCQ planning

    def _plan_jucq(self, query: JoinOfUnions) -> PlanNode:
        fragment_plans: List[PlanNode] = []
        for fragment_head, union in zip(query.fragment_heads, query.fragments):
            labels = self._head_labels(fragment_head)
            plan = self._plan_ucq(union, labels)
            self._annotate(plan)
            fragment_plans.append(plan)

        ordered = self._order_fragments(fragment_plans)
        current = ordered[0]
        for plan in ordered[1:]:
            current = JoinNode(current, plan, self.backend.join_algorithm)
            self._annotate(current)
        project = ProjectNode(current, self._projection_specs(query.head))
        self._annotate(project)
        return DistinctNode(project)

    def _order_fragments(self, plans: List[PlanNode]) -> List[PlanNode]:
        remaining = list(plans)
        remaining.sort(key=lambda plan: plan.estimated_rows)
        ordered = [remaining.pop(0)]
        bound = set(ordered[0].variable_positions())
        while remaining:
            connected = [
                plan
                for plan in remaining
                if bound & set(plan.variable_positions())
            ]
            pool = connected if connected else remaining
            best = min(pool, key=lambda plan: plan.estimated_rows)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best.variable_positions())
        return ordered
