"""SQL generation and a real-RDBMS backend (SQLite).

The paper evaluates reformulations "through performant relational
database management systems": the UCQ/SCQ/JUCQ is translated to SQL
over a triple table and handed to the engine.  This module does the
same against SQLite (in the standard library), making the repository's
central claims checkable on a *real* SQL engine:

* the dictionary-encoded triple table ``t(s, p, o)`` with the
  ``(p, s)`` / ``(p, o)`` indexes of :class:`TripleStore`;
* CQ → ``SELECT``: one self-join of ``t`` per atom, constants in the
  ``WHERE`` clause, shared variables as join predicates, non-literal
  guards as a ``kind`` filter via the dictionary table;
* UCQ → ``UNION`` of the disjunct SELECTs (set semantics for free);
* JUCQ → fragment UCQs as CTEs joined in an outer SELECT.

SQLite even reproduces the paper's parse failure genuinely: its
default compound-SELECT limit is 500 terms, so a union of thousands of
CQs is rejected by the real parser exactly as the 318,096-CQ
reformulation was by the paper's engines (experiment E12).
"""

from __future__ import annotations

import sqlite3
from typing import FrozenSet, List, Tuple

from ..engine.ir import EmptyNode
from ..engine.lowering import fragment_column_map, fragment_leaves, lower
from ..rdf.io import parse_term
from ..query.algebra import (
    ConjunctiveQuery,
    JoinOfUnions,
    UnionQuery,
)
from ..rdf.terms import Literal, Term
from .planner import Planner
from .store import TripleStore

#: SQLite's default SQLITE_MAX_COMPOUND_SELECT.
SQLITE_COMPOUND_SELECT_LIMIT = 500


class SqlGenerationError(ValueError):
    """The query cannot be translated (e.g. constant not in store)."""


def _lowering_planner(store: TripleStore) -> Planner:
    """A syntactic planner for SQL generation: no cost annotation (the
    target RDBMS replans anyway) and no simulated parse limit — the
    real engine's parser is the limit here."""
    from .backends import BackendProfile

    profile = BackendProfile("sql-lowering", max_query_atoms=10**9)
    return Planner(store, profile, annotate=False)


def _cq_to_sql(
    query: ConjunctiveQuery, store: TripleStore
) -> Tuple[str, List[int]]:
    """One SELECT over self-joins of ``t``; returns (sql, parameters).

    Compiled through the plan IR and lowered
    (:mod:`repro.engine.lowering`).  Raises
    :class:`SqlGenerationError` when a constant is absent from the
    dictionary (the CQ matches nothing; callers may skip it).
    """
    plan = _lowering_planner(store).plan(query)
    if isinstance(plan, EmptyNode):
        raise SqlGenerationError(
            "a constant of %r is not in the store" % (query,)
        )
    return lower(plan)


def ucq_to_sql(
    union: UnionQuery, store: TripleStore
) -> Tuple[str, List[int]]:
    """The UNION of the disjunct SELECTs (disjuncts whose constants are
    absent from the store lower to empty plans and are dropped)."""
    return lower(_lowering_planner(store).plan(union))


def jucq_to_sql(
    jucq: JoinOfUnions, store: TripleStore
) -> Tuple[str, List[int]]:
    """Fragment UCQs as CTEs, joined on shared variables, projected."""
    return lower(_lowering_planner(store).plan(jucq))


class SqliteBackend:
    """A genuine RDBMS evaluating this library's reformulations.

    Loads a :class:`TripleStore` into an in-memory SQLite database —
    triple table plus a dictionary table carrying each id's kind — and
    runs the generated SQL.  Answers must (and, per the test-suite, do)
    match the built-in executor's row for row.
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self.connection = sqlite3.connect(":memory:")
        #: High-water mark of dictionary ids already synced to ``dict``
        #: (COUNT(*) would drift: hole ids — reserved by the hierarchy
        #: encoder, not yet assigned a term — get no row).
        self._synced_terms = 0
        self._load()

    def _dict_rows(self, start: int, stop: int) -> List[Tuple[int, str]]:
        dictionary = self.store.dictionary
        rows = []
        for term_id in range(start, stop):
            if dictionary.is_hole(term_id):
                continue
            term = dictionary.decode(term_id)
            kind = "literal" if isinstance(term, Literal) else "resource"
            rows.append((term_id, kind))
        return rows

    def _load(self) -> None:
        cursor = self.connection.cursor()
        cursor.execute("CREATE TABLE t (s INTEGER, p INTEGER, o INTEGER)")
        cursor.execute("CREATE TABLE dict (id INTEGER PRIMARY KEY, kind TEXT)")
        cursor.executemany(
            "INSERT INTO t VALUES (?, ?, ?)", list(self.store.scan_all())
        )
        dictionary = self.store.dictionary
        cursor.executemany(
            "INSERT INTO dict VALUES (?, ?)",
            self._dict_rows(0, len(dictionary)),
        )
        self._synced_terms = len(dictionary)
        cursor.execute("CREATE INDEX idx_ps ON t (p, s)")
        cursor.execute("CREATE INDEX idx_po ON t (p, o)")
        # Without ANALYZE, SQLite's planner guesses and routinely scans
        # a whole property extent through the (p, s) index where the
        # (p, o) lookup is selective — 100x slowdowns on the UCQ
        # disjuncts.  A real deployment would ANALYZE too.
        cursor.execute("ANALYZE")
        self.connection.commit()

    def _refresh_dictionary(self) -> None:
        """Sync dictionary rows added since load."""
        dictionary = self.store.dictionary
        if len(dictionary) <= self._synced_terms:
            return
        cursor = self.connection.cursor()
        cursor.executemany(
            "INSERT INTO dict VALUES (?, ?)",
            self._dict_rows(self._synced_terms, len(dictionary)),
        )
        self._synced_terms = len(dictionary)
        self.connection.commit()

    # ------------------------------------------------------------------

    def to_sql(self, query) -> Tuple[str, List[int]]:
        """The SQL text + parameters for any supported query form."""
        if isinstance(query, ConjunctiveQuery):
            return _cq_to_sql(query, store=self.store)
        if isinstance(query, UnionQuery):
            return ucq_to_sql(query, self.store)
        if isinstance(query, JoinOfUnions):
            return jucq_to_sql(query, self.store)
        raise TypeError("cannot translate %r" % (query,))

    def run(self, query) -> FrozenSet[Tuple[Term, ...]]:
        """Translate, execute on SQLite, decode.

        JUCQs are executed the way the authors' EDBT'15 system runs
        them on its RDBMSs: each fragment UCQ is materialized into an
        indexed temporary table, then the fragments are joined — a
        single CTE statement leaves the engine joining unindexed
        subquery results, which scales badly (measured in E12).

        Raises ``sqlite3.OperationalError`` when the engine's own
        limits reject the statement (e.g. >500 compound SELECT terms) —
        the real-parser analogue of the paper's failure.
        """
        if isinstance(query, JoinOfUnions):
            rows = self._run_jucq_materialized(query)
        else:
            sql, parameters = self.to_sql(query)
            self._refresh_dictionary()
            rows = self.connection.execute(sql, parameters).fetchall()
        if query.arity == 0:
            return frozenset({()} if rows else set())
        decode = self.store.dictionary.decode

        def as_term(value):
            # ("term", Term) projection constants travel as N3 text
            # (the dictionary never stored them); everything else is a
            # term id.
            if isinstance(value, str):
                return parse_term(value)
            return decode(value)

        return frozenset(
            tuple(as_term(value) for value in row) for row in rows
        )

    def _run_jucq_materialized(self, jucq: JoinOfUnions) -> List[Tuple[int, ...]]:
        """Fragment-by-fragment materialization with join-column
        indexes (the paper's JUCQ execution strategy), then one join.

        Works on the compiled plan IR: the JUCQ plan is a distinct over
        a projection over a join chain whose leaves are the fragment
        union plans — each leaf is lowered to SQL and materialized into
        an indexed temp table, then the outer projection runs as one
        join statement.
        """
        plan = _lowering_planner(self.store).plan(jucq)
        project = plan.child  # DistinctNode(ProjectNode(...))
        fragments = fragment_leaves(project.child)
        self._refresh_dictionary()
        cursor = self.connection.cursor()
        table_names: List[str] = []
        try:
            for index, fragment in enumerate(fragments):
                sql, parameters = lower(fragment)
                name = "frag%d" % index
                table_names.append(name)
                cursor.execute(
                    "CREATE TEMP TABLE %s AS %s" % (name, sql), parameters
                )
            column_of, joins = fragment_column_map(
                fragments, lambda i: "frag%d" % i
            )
            for name, position, _condition in joins:
                cursor.execute(
                    "CREATE INDEX idx_%s_c%d ON %s (c%d)"
                    % (name, position, name, position)
                )

            select_items: List[str] = []
            outer_parameters: List = []
            for position, (kind, value) in enumerate(project.specs):
                if kind == "var":
                    select_items.append(
                        "%s AS c%d" % (column_of[value], position)
                    )
                elif kind == "term":
                    select_items.append("? AS c%d" % position)
                    outer_parameters.append(value.n3())
                else:
                    select_items.append("%d AS c%d" % (value, position))
            if not select_items:
                select_items.append("1 AS c0")
            sql = "SELECT DISTINCT %s FROM %s" % (
                ", ".join(select_items),
                ", ".join(table_names),
            )
            conditions = [condition for _, _, condition in joins]
            if conditions:
                sql += " WHERE " + " AND ".join(conditions)
            return cursor.execute(sql, outer_parameters).fetchall()
        finally:
            for name in table_names:
                cursor.execute("DROP TABLE IF EXISTS %s" % name)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
