"""Epoch-pinned snapshot reads: copy-on-write over the checkpoint codec.

A serving layer answers many queries while bulk loads and saturation
rounds mutate the store underneath them.  :class:`SnapshotManager`
gives readers a stable view without blocking writers:

* :meth:`~SnapshotManager.pin` is O(1) — it records the store's current
  *state epoch* and hands back a :class:`StoreSnapshot`;
* the first write after a pin pays one materialization: the pre-write
  state is frozen through the **checkpoint machinery**
  (:meth:`~repro.storage.store.TripleStore.encoded_state` →
  :meth:`~repro.storage.store.TripleStore.from_encoded`, exactly the
  bytes-on-disk snapshot path, so the frozen store equals a fresh
  build by construction);
* every pin taken at the same epoch shares that one frozen copy, and
  it is dropped as soon as the last pin releases.

Writers are intercepted through the store's *pre*-mutation listeners
(:meth:`~repro.storage.store.TripleStore.add_pre_listener`): the copy
is taken before the write applies, so a pinned reader can never
observe a concurrent bulk load, update, or saturation round — it reads
either the live store (nothing changed since the pin) or the frozen
pre-write state.

Thread-safe: pin/release and the write hooks run under one lock.  The
hooks fire even for writes that turn out to be no-ops (the pre-hook
cannot know); a no-op write may therefore materialize a copy that
equals the live state — conservative, never incorrect.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from .store import TripleStore


class StoreSnapshot:
    """A pinned, epoch-stamped read handle on one store state.

    Usable as a context manager; :meth:`store` returns the
    :class:`TripleStore` holding exactly the pinned state for as long
    as the pin is held.
    """

    def __init__(self, manager: "SnapshotManager", epoch: int, label=None):
        self._manager = manager
        self.epoch = epoch
        #: An opaque caller-provided stamp (e.g. the durable store's
        #: ``(data_epoch, schema_epoch)`` pair at pin time).
        self.label = label
        self.released = False

    def store(self) -> TripleStore:
        """The store as of the pinned epoch (live or frozen)."""
        return self._manager._resolve(self)

    def release(self) -> None:
        """Unpin; idempotent.  The last release of an epoch frees its
        frozen copy."""
        if not self.released:
            self.released = True
            self._manager._release(self)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return "StoreSnapshot(epoch=%d%s%s)" % (
            self.epoch,
            ", label=%r" % (self.label,) if self.label is not None else "",
            ", released" if self.released else "",
        )


class SnapshotManager:
    """Copy-on-write snapshot bookkeeping for one :class:`TripleStore`.

    >>> from repro.rdf import Namespace, RDF_TYPE, Triple, Graph
    >>> EX = Namespace("http://example.org/")
    >>> store = TripleStore.from_graph(Graph([Triple(EX.a, RDF_TYPE, EX.C)]))
    >>> manager = SnapshotManager(store)
    >>> with manager.pin() as snapshot:
    ...     _ = store.insert(Triple(EX.b, RDF_TYPE, EX.C))
    ...     (snapshot.store().triple_count, store.triple_count)
    (1, 2)
    """

    def __init__(
        self,
        store: TripleStore,
        label_fn: Optional[Callable[[], object]] = None,
    ):
        self.store = store
        self._label_fn = label_fn
        self._lock = threading.RLock()
        #: The state epoch: bumped on every (attempted) write while the
        #: manager watches the store.
        self.epoch = 0
        self._pins: Dict[int, int] = {}
        self._frozen: Dict[int, TripleStore] = {}
        store.add_pre_listener(self._before_write)

    # ------------------------------------------------------------------

    def pin(self) -> StoreSnapshot:
        """Pin the current state; O(1), no copying."""
        with self._lock:
            label = self._label_fn() if self._label_fn is not None else None
            self._pins[self.epoch] = self._pins.get(self.epoch, 0) + 1
            return StoreSnapshot(self, self.epoch, label)

    @property
    def active_pins(self) -> int:
        with self._lock:
            return sum(self._pins.values())

    @property
    def frozen_copies(self) -> int:
        """How many materialized pre-write copies are currently held —
        the copy-on-write cost witness (0 until a write lands under a
        pin)."""
        with self._lock:
            return len(self._frozen)

    def pinned_at(self, epoch: int) -> int:
        """How many pins are held at *epoch* (0 when none)."""
        with self._lock:
            return self._pins.get(epoch, 0)

    def prepare_write(self) -> None:
        """Freeze the current state for active pins *now*, ahead of a
        compound mutation.  The per-triple hooks would freeze at the
        first triple write anyway; callers mutating state the hooks
        cannot see first (schema constraints, whose entailed triples
        land only afterwards) invoke this to pin the genuinely
        pre-write view."""
        self._before_write(None, "prepare")

    # ------------------------------------------------------------------
    # Store hooks and resolution

    def _before_write(self, _triple, _operation) -> None:
        with self._lock:
            if self._pins.get(self.epoch) and self.epoch not in self._frozen:
                terms, triples = self.store.encoded_state()
                self._frozen[self.epoch] = TripleStore.from_encoded(
                    terms, triples, self.store.schema
                )
            # Every write attempt opens a new epoch: later pins must
            # never share a frozen copy taken before this write.
            self.epoch += 1

    def _resolve(self, snapshot: StoreSnapshot) -> TripleStore:
        if snapshot.released:
            raise ValueError("snapshot %r was released" % (snapshot,))
        with self._lock:
            frozen = self._frozen.get(snapshot.epoch)
            if frozen is not None:
                return frozen
            # No write happened since the pin: the live store *is* the
            # pinned state.
            return self.store

    def _release(self, snapshot: StoreSnapshot) -> None:
        with self._lock:
            remaining = self._pins.get(snapshot.epoch, 0) - 1
            if remaining > 0:
                self._pins[snapshot.epoch] = remaining
            else:
                self._pins.pop(snapshot.epoch, None)
                self._frozen.pop(snapshot.epoch, None)

    def __repr__(self) -> str:
        return "SnapshotManager(epoch=%d, pins=%d, frozen=%d)" % (
            self.epoch,
            self.active_pins,
            self.frozen_copies,
        )
