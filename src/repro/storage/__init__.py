"""The relational substrate: dictionary-encoded triple store,
physical plans, planner, executor, backend profiles (S6)."""

from .backends import (
    BackendProfile,
    DEFAULT_BACKENDS,
    HASH_BACKEND,
    LOOP_BACKEND,
    MERGE_BACKEND,
    QueryTooLargeError,
)
from .charsets import CharacteristicSets
from .dictionary import Dictionary
from .plan import (
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    RelationNode,
    ScanNode,
    UnionNode,
)
from .store import TripleStore
from .snapshot import SnapshotManager, StoreSnapshot
from .planner import Planner, query_atom_total
from .executor import ENGINES, ExecutionResult, Executor, execute_plan
from .explain import explain, plan_summary
from .sql import SQLITE_COMPOUND_SELECT_LIMIT, SqlGenerationError, SqliteBackend, jucq_to_sql, ucq_to_sql
from .statistics import PropertyStatistics, StoreStatistics

__all__ = [
    "BackendProfile",
    "CharacteristicSets",
    "DEFAULT_BACKENDS",
    "Dictionary",
    "DistinctNode",
    "ENGINES",
    "EmptyNode",
    "ExecutionResult",
    "Executor",
    "HASH_BACKEND",
    "JoinNode",
    "LOOP_BACKEND",
    "MERGE_BACKEND",
    "NonLiteralFilterNode",
    "PlanNode",
    "Planner",
    "ProjectNode",
    "PropertyStatistics",
    "RelationNode",
    "SQLITE_COMPOUND_SELECT_LIMIT",
    "SqlGenerationError",
    "SqliteBackend",
    "QueryTooLargeError",
    "ScanNode",
    "SnapshotManager",
    "StoreSnapshot",
    "StoreStatistics",
    "TripleStore",
    "UnionNode",
    "execute_plan",
    "explain",
    "plan_summary",
    "jucq_to_sql",
    "query_atom_total",
    "ucq_to_sql",
]
