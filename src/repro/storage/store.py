"""The dictionary-encoded triple store.

The paper evaluates Ref strategies "through performant relational
database management systems" holding a triple table ``t(s, p, o)``.
:class:`TripleStore` is this repository's stand-in (see DESIGN.md's
substitution table): a single logical triple table of integer codes
with the secondary access paths such an RDBMS would use —

* ``pso``: property → subject → objects  (clustered index on (p, s));
* ``pos``: property → object → subjects  (index on (p, o));
* the bare property extent (for scans with unbound s and o).

Loading a graph always stores the *closed* schema alongside the data
(the database contract of :mod:`repro.reformulation.atoms`), and keeps
the statistics of :mod:`repro.storage.statistics` current.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import Term
from ..rdf.triples import Triple
from ..schema.schema import Schema
from .dictionary import Dictionary
from .statistics import StoreStatistics

#: An encoded triple.
EncodedTriple = Tuple[int, int, int]


class TripleStore:
    """An in-memory relational triple table with indexes and statistics.

    >>> from repro.rdf import Namespace, RDF_TYPE, Triple, Graph
    >>> EX = Namespace("http://example.org/")
    >>> store = TripleStore.from_graph(Graph([Triple(EX.a, RDF_TYPE, EX.C)]))
    >>> store.triple_count
    1
    """

    def __init__(self):
        self.dictionary = Dictionary()
        self._triples: Set[EncodedTriple] = set()
        self._pso: Dict[int, Dict[int, List[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._pos: Dict[int, Dict[int, List[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._type_id: Optional[int] = None
        self.statistics = StoreStatistics(lambda: self._type_id)
        self.schema = Schema()
        self._listeners = []
        self._pre_listeners = []
        # Bumped on every successful encoded-level mutation — including
        # paths that bypass the Triple-level listeners (checkpoint
        # restore, WAL replay).  The columnar index set compares this
        # against the epoch it was built at to decide staleness.
        self._mutation_epoch = 0
        self._columnar = None

    def add_listener(self, callback) -> None:
        """Register ``callback(triple, operation)`` invoked after every
        successful :meth:`insert`/:meth:`delete` (operation ``"insert"``
        or ``"delete"``) — the cache subsystem's invalidation hook."""
        self._listeners.append(callback)

    def add_pre_listener(self, callback) -> None:
        """Register ``callback(triple, operation)`` invoked *before* a
        mutation is applied (it may turn out to be a no-op) — the
        snapshot subsystem's copy-on-write hook: a pinned reader
        materializes the pre-write state here, so it never observes the
        write itself."""
        self._pre_listeners.append(callback)

    def _notify(self, triple: Triple, operation: str) -> None:
        for callback in self._listeners:
            callback(triple, operation)

    def _notify_pre(self, triple: Triple, operation: str) -> None:
        for callback in self._pre_listeners:
            callback(triple, operation)

    # ------------------------------------------------------------------
    # Loading

    @classmethod
    def from_graph(
        cls, graph: Graph, schema: Optional[Schema] = None
    ) -> "TripleStore":
        """Build a store from *graph*; constraints found in the graph
        and in *schema* are merged, closed, and stored."""
        store = cls()
        store.load(graph, schema)
        return store

    def load(self, graph: Graph, schema: Optional[Schema] = None) -> None:
        """Load a graph (and optional extra constraints) into the store."""
        combined = Schema.from_graph(graph)
        if schema is not None:
            for constraint in schema.direct_constraints():
                combined.add(constraint)
        for constraint in combined.direct_constraints():
            self.schema.add(constraint)
        for triple in graph.data_triples():
            self.insert(triple)
        for triple in self.schema.entailed_triples():
            self.insert(triple)

    @classmethod
    def from_encoded(
        cls,
        terms: Iterable[Term],
        triples: Iterable[EncodedTriple],
        schema: Optional[Schema] = None,
    ) -> "TripleStore":
        """Rebuild a store from a checkpoint snapshot: the dictionary's
        term table in id order plus the encoded triple table.

        Re-encoding *terms* in order reproduces the exact id
        assignment (ids are dense, first-seen), so the encoded triples
        drop straight into the indexes; statistics are re-derived
        triple by triple, which makes them equal a fresh
        :meth:`from_graph` build by construction.
        """
        store = cls()
        for term in terms:
            if term is None:
                store.dictionary.reserve(1)
            else:
                store.dictionary.encode(term)
        type_id = store.dictionary.lookup(RDF_TYPE)
        if type_id is not None:
            store._type_id = type_id
        for encoded in triples:
            store._insert_encoded(tuple(encoded))
        if schema is not None:
            for constraint in schema.direct_constraints():
                store.schema.add(constraint)
        return store

    def encoded_state(self) -> Tuple[List[Term], List[EncodedTriple]]:
        """The checkpoint payload: (terms in id order, sorted encoded
        triples) — everything :meth:`from_encoded` needs.

        The triple list is **sorted by (s, p, o)** — a contract, not an
        accident: checkpoint bytes must not depend on set iteration
        order (``PYTHONHASHSEED``), and the columnar SPO index can be
        rebuilt from a restored checkpoint without re-sorting."""
        return self.dictionary.terms(), sorted(self._triples)

    def insert(self, triple: Triple) -> bool:
        """Insert one triple; return True when it was new."""
        if self._pre_listeners:
            self._notify_pre(triple, "insert")
        if triple.property == RDF_TYPE and self._type_id is None:
            self._type_id = self.dictionary.encode(RDF_TYPE)
        encoded = (
            self.dictionary.encode(triple.subject),
            self.dictionary.encode(triple.property),
            self.dictionary.encode(triple.object),
        )
        inserted = self._insert_encoded(encoded)
        if inserted and self._listeners:
            self._notify(triple, "insert")
        return inserted

    def _insert_encoded(self, encoded: EncodedTriple) -> bool:
        if encoded in self._triples:
            return False
        subject_id, property_id, object_id = encoded
        self._triples.add(encoded)
        self._pso[property_id][subject_id].append(object_id)
        self._pos[property_id][object_id].append(subject_id)
        self.statistics.record(subject_id, property_id, object_id)
        self._mutation_epoch += 1
        return True

    def delete(self, triple: Triple) -> bool:
        """Remove one triple (if present); keeps indexes and statistics
        consistent.  Dictionary entries are never reclaimed (ids are
        stable by design)."""
        if self._pre_listeners:
            self._notify_pre(triple, "delete")
        encoded = tuple(
            self.dictionary.lookup(term) for term in triple.as_tuple()
        )
        if None in encoded or encoded not in self._triples:
            return False
        subject_id, property_id, object_id = encoded  # type: ignore[misc]
        self._triples.discard(encoded)  # type: ignore[arg-type]
        objects = self._pso[property_id][subject_id]
        objects.remove(object_id)
        if not objects:
            del self._pso[property_id][subject_id]
            if not self._pso[property_id]:
                del self._pso[property_id]
        subjects = self._pos[property_id][object_id]
        subjects.remove(subject_id)
        if not subjects:
            del self._pos[property_id][object_id]
            if not self._pos[property_id]:
                del self._pos[property_id]
        self.statistics.unrecord(subject_id, property_id, object_id)
        self._mutation_epoch += 1
        if self._listeners:
            self._notify(triple, "delete")
        return True

    # ------------------------------------------------------------------
    # Identifier helpers

    def term_id(self, term: Term) -> Optional[int]:
        """The id of *term*, or None when absent from the store."""
        return self.dictionary.lookup(term)

    def decode_row(self, row: Tuple) -> Tuple[Term, ...]:
        # Projection rows may carry a ready Term (a constant the query
        # names but the data never stored — see ``("term", …)`` specs):
        # those pass through undecoded.
        return tuple(
            value if isinstance(value, Term) else self.dictionary.decode(value)
            for value in row
        )

    @property
    def type_property_id(self) -> Optional[int]:
        return self._type_id

    # ------------------------------------------------------------------
    # Access paths (the executor's scan primitives)

    @property
    def triple_count(self) -> int:
        return len(self._triples)

    def property_ids(self) -> List[int]:
        return list(self._pso.keys())

    def scan_property(self, property_id: int) -> Iterator[Tuple[int, int]]:
        """All (subject, object) pairs of one property (extent scan)."""
        for subject_id, objects in self._pso.get(property_id, {}).items():
            for object_id in objects:
                yield (subject_id, object_id)

    def scan_property_subject(
        self, property_id: int, subject_id: int
    ) -> Iterator[int]:
        """Objects of (subject, property) via the (p, s) index."""
        by_subject = self._pso.get(property_id)
        if by_subject is None:
            return iter(())
        return iter(by_subject.get(subject_id, ()))

    def scan_property_object(
        self, property_id: int, object_id: int
    ) -> Iterator[int]:
        """Subjects of (property, object) via the (p, o) index."""
        by_object = self._pos.get(property_id)
        if by_object is None:
            return iter(())
        return iter(by_object.get(object_id, ()))

    def scan_property_object_range(
        self, property_id: int, lo: int, hi: int
    ) -> Iterator[Tuple[int, int]]:
        """All (subject, object) pairs of *property* whose object id
        lies in the half-open interval ``[lo, hi)`` — the interval-atom
        access path of the hierarchy-aware encoding.  Probes each id in
        the (narrow, schema-sized) window against the (p, o) index;
        groups ascend by object id, subjects iterate in set order like
        the point-scan paths (sorting here would cost more than the
        collapsed union saves)."""
        by_object = self._pos.get(property_id)
        if by_object is None:
            return
        for object_id in range(lo, hi):
            subjects = by_object.get(object_id)
            if subjects:
                for subject_id in subjects:
                    yield (subject_id, object_id)

    def scan_property_range(
        self,
        lo: int,
        hi: int,
        subject_id: Optional[int] = None,
        object_id: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """All (subject, property, object) triples whose *property* id
        lies in ``[lo, hi)`` — the access path of a subproperty
        interval atom.  Probes each id in the window against the
        per-property indexes instead of scanning the triple table, and
        honours bound subject/object positions."""
        for property_id in range(lo, hi):
            if subject_id is not None and object_id is not None:
                if (subject_id, property_id, object_id) in self._triples:
                    yield (subject_id, property_id, object_id)
            elif subject_id is not None:
                for value in self.scan_property_subject(
                    property_id, subject_id
                ):
                    yield (subject_id, property_id, value)
            elif object_id is not None:
                for value in self.scan_property_object(
                    property_id, object_id
                ):
                    yield (value, property_id, object_id)
            else:
                for subject, object_ in self.scan_property(property_id):
                    yield (subject, property_id, object_)

    def contains(self, encoded: EncodedTriple) -> bool:
        return encoded in self._triples

    def scan_all(self) -> Iterator[EncodedTriple]:
        """Full triple-table scan (patterns with unbound property).

        Deterministically **sorted by (s, p, o)**: the columnar engine's
        sorted-run indexes assume a stable base order, and every engine's
        scan output must not vary with ``PYTHONHASHSEED`` (set iteration
        order).  Served from the columnar SPO run when one is already
        built and current, so the sort is not paid twice.
        """
        columnar = self._columnar
        if columnar is not None and columnar.has_current("spo"):
            return columnar.order("spo").iter_triples()
        return iter(sorted(self._triples))

    def __iter__(self) -> Iterator[EncodedTriple]:
        """Iterate the encoded triple table in sorted (s, p, o) order —
        the same deterministic contract as :meth:`scan_all`."""
        return self.scan_all()

    def match(
        self,
        subject_id: Optional[int] = None,
        property_id: Optional[int] = None,
        object_id: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        """Yield encoded triples matching the bound ids (None = wildcard)
        in a deterministic sorted order.

        The order is the probing index's run order — (s, p, o) for
        subject-bound or unconstrained matches, (p, o, s) when the
        property is bound, (o, s, p) for object-only matches — never
        hash order, so repeated runs under different ``PYTHONHASHSEED``
        values enumerate identically.
        """
        return self.columnar().match(subject_id, property_id, object_id)

    # ------------------------------------------------------------------
    # Columnar sorted-run indexes (the vectorized engine's access paths)

    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of successful encoded-level mutations."""
        return self._mutation_epoch

    def columnar(self):
        """The store's :class:`~repro.columnar.indexes.ColumnarIndexSet`
        — SPO/POS/OSP sorted integer-run indexes, built lazily on first
        probe and invalidated through the mutation listeners/epoch."""
        if self._columnar is None:
            from ..columnar.indexes import ColumnarIndexSet

            self._columnar = ColumnarIndexSet(self)
        return self._columnar

    # ------------------------------------------------------------------

    def to_graph(self) -> Graph:
        """Decode the full store back into a logical graph."""
        graph = Graph()
        for subject_id, property_id, object_id in self._triples:
            graph.add(
                Triple(
                    self.dictionary.decode(subject_id),
                    self.dictionary.decode(property_id),
                    self.dictionary.decode(object_id),
                )
            )
        return graph

    def __len__(self) -> int:
        return len(self._triples)

    def __repr__(self) -> str:
        return "TripleStore(<%d triples, %d terms>)" % (
            len(self._triples),
            len(self.dictionary),
        )
