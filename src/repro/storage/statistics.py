"""Database statistics: the raw material of the cost model.

The demo's first screen shows, per dataset, "value distributions for
subject, property and object, for attribute pairs etc." (Section 5,
step 1); the cost model of [5] estimates (sub)query cardinalities from
the same statistics an RDBMS keeps on a triple table:

* total triple count;
* per-property triple counts and distinct subject/object counts;
* per-class instance counts (cardinality of ``rdf:type`` per class);
* global distinct counts per column.

All statistics are maintained incrementally on insertion, so loading a
graph leaves the store ready for cost-based planning with no separate
ANALYZE pass.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Set, Tuple


class PropertyStatistics:
    """Counts for one property's (s, o) pairs."""

    __slots__ = ("triples", "_subjects", "_objects")

    def __init__(self):
        self.triples = 0
        self._subjects: Counter = Counter()
        self._objects: Counter = Counter()

    def record(self, subject_id: int, object_id: int) -> None:
        self.triples += 1
        self._subjects[subject_id] += 1
        self._objects[object_id] += 1

    def unrecord(self, subject_id: int, object_id: int) -> None:
        self.triples -= 1
        for counter, key in ((self._subjects, subject_id), (self._objects, object_id)):
            counter[key] -= 1
            if counter[key] <= 0:
                del counter[key]

    @property
    def distinct_subjects(self) -> int:
        return len(self._subjects)

    @property
    def distinct_objects(self) -> int:
        return len(self._objects)

    def subject_count(self, subject_id: int) -> int:
        return self._subjects.get(subject_id, 0)

    def object_count(self, object_id: int) -> int:
        return self._objects.get(object_id, 0)

    def top_subjects(self, limit: int = 10) -> List[Tuple[int, int]]:
        return self._subjects.most_common(limit)

    def top_objects(self, limit: int = 10) -> List[Tuple[int, int]]:
        return self._objects.most_common(limit)


class StoreStatistics:
    """Statistics over an entire triple store."""

    def __init__(self, type_property_id_getter):
        # Callable returning the id of rdf:type once encoded (or None);
        # passed lazily because the dictionary assigns ids on first use.
        self._type_property_id = type_property_id_getter
        self.total_triples = 0
        self.per_property: Dict[int, PropertyStatistics] = defaultdict(
            PropertyStatistics
        )
        self.class_cardinality: Counter = Counter()
        self._all_subjects: Set[int] = set()
        self._all_objects: Set[int] = set()

    def record(self, subject_id: int, property_id: int, object_id: int) -> None:
        self.total_triples += 1
        self.per_property[property_id].record(subject_id, object_id)
        self._all_subjects.add(subject_id)
        self._all_objects.add(object_id)
        if property_id == self._type_property_id():
            self.class_cardinality[object_id] += 1

    def unrecord(self, subject_id: int, property_id: int, object_id: int) -> None:
        """Reverse one :meth:`record` (triple deletion support).

        Global distinct-subject/object sets are kept as upper bounds —
        recomputing them per deletion would cost a full scan; the cost
        model only uses them for the rare unbound-property scans.
        """
        self.total_triples -= 1
        stats = self.per_property.get(property_id)
        if stats is not None:
            stats.unrecord(subject_id, object_id)
            if stats.triples <= 0:
                del self.per_property[property_id]
        if property_id == self._type_property_id():
            self.class_cardinality[object_id] -= 1
            if self.class_cardinality[object_id] <= 0:
                del self.class_cardinality[object_id]

    # ------------------------------------------------------------------
    # Accessors used by the cost model

    def property_count(self, property_id: int) -> int:
        stats = self.per_property.get(property_id)
        return stats.triples if stats else 0

    def property_distinct_subjects(self, property_id: int) -> int:
        stats = self.per_property.get(property_id)
        return stats.distinct_subjects if stats else 0

    def property_distinct_objects(self, property_id: int) -> int:
        stats = self.per_property.get(property_id)
        return stats.distinct_objects if stats else 0

    def class_count(self, class_id: int) -> int:
        return self.class_cardinality.get(class_id, 0)

    def property_subject_count(self, property_id: int, subject_id: int) -> int:
        """Exact number of triples (subject_id, property_id, *) —
        the per-constant frequency an RDBMS would keep as an MCV list
        (here complete, since the store is in memory anyway)."""
        stats = self.per_property.get(property_id)
        return stats.subject_count(subject_id) if stats else 0

    def property_object_count(self, property_id: int, object_id: int) -> int:
        """Exact number of triples (*, property_id, object_id)."""
        stats = self.per_property.get(property_id)
        return stats.object_count(object_id) if stats else 0

    @property
    def distinct_subjects(self) -> int:
        return len(self._all_subjects)

    @property
    def distinct_objects(self) -> int:
        return len(self._all_objects)

    @property
    def distinct_properties(self) -> int:
        return len(self.per_property)

    def summary(self) -> Dict[str, int]:
        """The headline numbers shown by the demo's statistics panel."""
        return {
            "triples": self.total_triples,
            "properties": self.distinct_properties,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
            "classes": len(self.class_cardinality),
        }
