"""Characteristic sets: precise cardinalities for star queries.

The paper's reference [14] (RDF-3X) line of work introduced
*characteristic sets* (Neumann & Moerkotte, ICDE 2011): partition
subjects by the exact set of properties they carry, and keep, per
partition, the subject count and the mean number of objects per
property.  A star query — several atoms sharing one subject variable,
the dominant shape in the LUBM workload and in Example 1's grouped
fragments — then has an almost exact cardinality:

    |{s : s has p1 … pk}|        = Σ  count(S)           over S ⊇ {p1…pk}
    |⋈ star over p1 … pk|        = Σ  count(S)·Π mult(S, pi)

while the textbook pairwise System-R estimate multiplies per-edge
selectivities and compounds its independence errors with every join.
Ablation A4 measures the gap.  This module is an *analysis* extension:
the default planner keeps the paper's textbook model (see A1 for why),
and characteristic sets are exposed for star estimation and the
statistics panel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..query.algebra import ConjunctiveQuery, Variable
from .store import TripleStore


class CharacteristicSets:
    """The characteristic-set statistics of one store.

    >>> from repro.rdf import Namespace, Graph, Triple
    >>> EX = Namespace("http://e/")
    >>> store = TripleStore.from_graph(Graph([
    ...     Triple(EX.a, EX.p, EX.x), Triple(EX.a, EX.q, EX.y),
    ...     Triple(EX.b, EX.p, EX.z)]))
    >>> cs = CharacteristicSets(store)
    >>> cs.set_count
    2
    """

    def __init__(self, store: TripleStore):
        self.store = store
        subject_properties: Dict[int, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for subject_id, property_id, _ in store.scan_all():
            subject_properties[subject_id][property_id] += 1

        #: characteristic set → number of subjects carrying exactly it.
        self.counts: Dict[FrozenSet[int], int] = defaultdict(int)
        #: (characteristic set, property) → total triples of that
        #: property over those subjects (for mean multiplicities).
        self._totals: Dict[Tuple[FrozenSet[int], int], int] = defaultdict(int)
        for properties in subject_properties.values():
            char_set = frozenset(properties)
            self.counts[char_set] += 1
            for property_id, multiplicity in properties.items():
                self._totals[(char_set, property_id)] += multiplicity

    @property
    def set_count(self) -> int:
        """How many distinct characteristic sets the data has (real
        datasets have surprisingly few — the method's selling point)."""
        return len(self.counts)

    def multiplicity(self, char_set: FrozenSet[int], property_id: int) -> float:
        """Mean triples of *property_id* per subject in *char_set*."""
        count = self.counts.get(char_set, 0)
        if count == 0:
            return 0.0
        return self._totals.get((char_set, property_id), 0) / count

    # ------------------------------------------------------------------
    # Star estimation

    def star_subject_count(self, property_ids: Iterable[int]) -> int:
        """Exactly how many subjects carry *all* the given properties."""
        wanted = frozenset(property_ids)
        return sum(
            count
            for char_set, count in self.counts.items()
            if wanted <= char_set
        )

    def estimate_star_rows(self, property_ids: Sequence[int]) -> float:
        """Cardinality of the star join ``?s p1 ?o1 . … ?s pk ?ok``.

        Exact when per-subject multiplicities are uniform within each
        characteristic set (in particular whenever every property
        occurs at most once per subject); otherwise the per-set *mean*
        multiplicities introduce a small aggregation error — the
        "almost exact" of the original paper.  The subject count
        (:meth:`star_subject_count`) is always exact.
        """
        wanted = frozenset(property_ids)
        total = 0.0
        for char_set, count in self.counts.items():
            if not wanted <= char_set:
                continue
            product = float(count)
            for property_id in property_ids:
                product *= self.multiplicity(char_set, property_id)
            total += product
        return total

    # ------------------------------------------------------------------

    def star_properties(self, query: ConjunctiveQuery) -> Optional[List[int]]:
        """The encoded property list when *query* is a pure subject
        star (every atom shares one subject variable, constant
        properties, distinct unshared object variables); else None."""
        subjects = {atom.subject for atom in query.atoms}
        if len(subjects) != 1 or not isinstance(next(iter(subjects)), Variable):
            return None
        property_ids: List[int] = []
        seen_objects = set()
        for atom in query.atoms:
            if isinstance(atom.property, Variable):
                return None
            if not isinstance(atom.object, Variable):
                return None
            if atom.object in seen_objects or atom.object == atom.subject:
                return None
            seen_objects.add(atom.object)
            property_id = self.store.term_id(atom.property)
            if property_id is None:
                return None
            property_ids.append(property_id)
        return property_ids

    def top_sets(self, limit: int = 10) -> List[Tuple[FrozenSet[int], int]]:
        """The most populous characteristic sets (statistics panel)."""
        return sorted(self.counts.items(), key=lambda item: -item[1])[:limit]
