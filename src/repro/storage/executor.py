"""Plan execution (the materialized engine, plus the engine switch).

Interprets the plan trees of :mod:`repro.engine.ir` against a
:class:`~repro.storage.store.TripleStore`, materializing each operator
(the paper's Example 1 discussion is about *intermediate result sizes*
— 33 million rows for the open type atoms vs 2,296 after grouping — so
the executor records the actual cardinality of every node, letting
experiments compare the estimates with reality).

:class:`Executor` is the façade over the physical engines: the
materialized interpreter below, the pipelined batch executor of
:mod:`repro.engine.pipeline` (``engine="pipelined"``), which runs the
same plans in bounded memory with per-operator metrics, and the
vectorized columnar executor of :mod:`repro.columnar.engine`
(``engine="columnar"``), which runs them over sorted integer-run
indexes exchanging column batches.  Either way the result is an
:class:`ExecutionResult` with the same API.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..engine.metrics import PipelineMetrics
from ..engine.pipeline import iter_scan_rows, run_on_store
from ..parallel.pool import ExecutorPool
from ..parallel.scheduler import TaskGraph
from ..rdf.terms import Term
from .backends import BackendProfile, HASH_BACKEND
from .plan import (
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    RelationNode,
    ScanNode,
    UnionNode,
)
from .planner import PlannableQuery, Planner
from .store import TripleStore

Row = Tuple[int, ...]

#: The physical engines :class:`Executor` can run a plan on.
ENGINES = ("materialized", "pipelined", "columnar")


class ExecutionResult:
    """The outcome of running one plan: decoded answer plus metrics."""

    def __init__(
        self,
        plan: PlanNode,
        rows: List[Row],
        store: TripleStore,
        elapsed_seconds: float,
        metrics: Optional[PipelineMetrics] = None,
        engine: str = "materialized",
    ):
        self.plan = plan
        self._rows = rows
        self._store = store
        self.elapsed_seconds = elapsed_seconds
        #: Per-operator pipeline metrics (pipelined runs only).
        self.metrics = metrics
        self.engine = engine
        self._answer: Optional[FrozenSet[Tuple[Term, ...]]] = None

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def answer(self) -> FrozenSet[Tuple[Term, ...]]:
        """The decoded answer relation (set semantics), memoized —
        diagnostics-heavy callers read it repeatedly and must not pay
        decoding and re-freezing each time."""
        if self._answer is None:
            self._answer = frozenset(
                self._store.decode_row(row) for row in self._rows
            )
        return self._answer

    def max_intermediate_rows(self) -> int:
        """The largest operator output in the plan — the quantity that
        makes SCQ evaluation slow in Example 1."""
        return max(
            (node.actual_rows or 0) for node in self.plan.walk()
        )

    @property
    def peak_buffered_rows(self) -> int:
        """The engine's memory high-water mark in rows.

        For a pipelined or columnar run, the global peak of
        concurrently buffered operator state (from the metrics) —
        counted as rows *represented*, so a column chunk of 1,024 rows
        contributes 1,024 whatever its Python object count, keeping
        E16-style memory comparisons meaningful across all three
        engines.  For a materialized run the best available proxy is
        the largest operator output, which the interpreter held in
        full by construction.
        """
        if self.metrics is not None:
            return self.metrics.peak_buffered_rows
        return self.max_intermediate_rows()

    def node_cardinalities(self) -> List[Tuple[str, float, Optional[int]]]:
        """(operator, estimated rows, actual rows) per node, preorder —
        the demo's step-3 inspection panel."""
        return [
            (repr(node), node.estimated_rows, node.actual_rows)
            for node in self.plan.walk()
        ]


def _execute_scan(node: ScanNode, store: TripleStore) -> List[Row]:
    # One scan implementation for both engines: the pipeline pulls
    # iter_scan_rows lazily, the materialized interpreter drains it.
    return list(iter_scan_rows(node, store))


def _join_rows(
    node: JoinNode,
    left_rows: List[Row],
    right_rows: List[Row],
    budget=None,
) -> List[Row]:
    left_positions = node.left.variable_positions()
    right_positions = node.right.variable_positions()
    left_key = [left_positions[v] for v in node.join_variables]
    right_key = [right_positions[v] for v in node.join_variables]
    keep = node.keep_right_indexes

    # In-loop budget probe: joins are where intermediate results blow
    # up (Example 1's 33M rows), so the guard must fire *inside* the
    # output loop, not after materialisation.  Probing every row would
    # dominate the join; every CHECK_INTERVAL rows is free in practice.
    if budget is None:
        def probe(count: int) -> None:
            pass
    else:
        from ..resilience.budget import CHECK_INTERVAL

        def probe(count: int) -> None:
            if count % CHECK_INTERVAL == 0:
                budget.probe_rows(count, operator="join (%s)" % node.algorithm)
                budget.check_time(operator="join (%s)" % node.algorithm)

    if node.algorithm == "nested_loop":
        output: List[Row] = []
        for left in left_rows:
            lkey = tuple(left[i] for i in left_key)
            for right in right_rows:
                if tuple(right[i] for i in right_key) == lkey:
                    output.append(left + tuple(right[i] for i in keep))
                    probe(len(output))
        return output

    if node.algorithm == "merge":
        left_sorted = sorted(left_rows, key=lambda r: tuple(r[i] for i in left_key))
        right_sorted = sorted(
            right_rows, key=lambda r: tuple(r[i] for i in right_key)
        )
        output = []
        li = ri = 0
        while li < len(left_sorted) and ri < len(right_sorted):
            lkey = tuple(left_sorted[li][i] for i in left_key)
            rkey = tuple(right_sorted[ri][i] for i in right_key)
            if lkey < rkey:
                li += 1
            elif lkey > rkey:
                ri += 1
            else:
                lend = li
                while lend < len(left_sorted) and tuple(
                    left_sorted[lend][i] for i in left_key
                ) == lkey:
                    lend += 1
                rend = ri
                while rend < len(right_sorted) and tuple(
                    right_sorted[rend][i] for i in right_key
                ) == rkey:
                    rend += 1
                for left in left_sorted[li:lend]:
                    for right in right_sorted[ri:rend]:
                        output.append(left + tuple(right[i] for i in keep))
                        probe(len(output))
                li, ri = lend, rend
        return output

    # Hash join: build on the smaller input, preserving output layout
    # (left columns then kept right columns) regardless of build side.
    table: Dict[Tuple[int, ...], List[Row]] = {}
    if len(left_rows) <= len(right_rows):
        for left in left_rows:
            table.setdefault(tuple(left[i] for i in left_key), []).append(left)
        output = []
        for right in right_rows:
            key = tuple(right[i] for i in right_key)
            kept = tuple(right[i] for i in keep)
            for left in table.get(key, ()):
                output.append(left + kept)
                probe(len(output))
        return output
    for right in right_rows:
        table.setdefault(tuple(right[i] for i in right_key), []).append(right)
    output = []
    for left in left_rows:
        key = tuple(left[i] for i in left_key)
        for right in table.get(key, ()):
            output.append(left + tuple(right[i] for i in keep))
            probe(len(output))
    return output


def execute_plan(
    node: PlanNode,
    store: TripleStore,
    budget=None,
    precomputed: Optional[Dict[int, List[Row]]] = None,
) -> List[Row]:
    """Recursively execute *node*, recording actual cardinalities.

    ``budget`` (an :class:`~repro.resilience.budget.ExecutionBudget`)
    charges every operator's output against a cumulative row cap —
    exactly the "intermediate result size" quantity of the paper's
    Example 1 — and raises
    :class:`~repro.resilience.errors.BudgetExceeded` instead of
    materialising past it.  Joins additionally probe mid-loop (see
    :func:`_join_rows`), so even one runaway operator cannot overshoot
    the cap by more than ``CHECK_INTERVAL`` rows.

    ``precomputed`` maps ``id(subtree)`` to rows already produced by a
    pool worker (see :func:`execute_plan_parallel`): such subtrees are
    returned as-is, without re-executing or re-charging — the worker
    already paid for them.
    """
    if precomputed is not None:
        ready = precomputed.get(id(node))
        if ready is not None:
            return ready
    if isinstance(node, EmptyNode):
        rows: List[Row] = []
    elif isinstance(node, RelationNode):
        rows = list(node.rows)
    elif isinstance(node, ScanNode):
        rows = _execute_scan(node, store)
    elif isinstance(node, JoinNode):
        rows = _join_rows(
            node,
            execute_plan(node.left, store, budget, precomputed),
            execute_plan(node.right, store, budget, precomputed),
            budget=budget,
        )
    elif isinstance(node, ProjectNode):
        child_rows = execute_plan(node.child, store, budget, precomputed)
        positions = node.child.variable_positions()
        plan_specs = [
            ("col", positions[value]) if kind == "var" else ("const", value)
            for kind, value in node.specs
        ]
        rows = [
            tuple(
                row[value] if kind == "col" else value
                for kind, value in plan_specs
            )
            for row in child_rows
        ]
    elif isinstance(node, NonLiteralFilterNode):
        child_rows = execute_plan(node.child, store, budget, precomputed)
        positions = node.child.variable_positions()
        guarded = [positions[variable] for variable in node.variables]
        is_literal = store.dictionary.is_literal_id
        rows = [
            row
            for row in child_rows
            if not any(is_literal(row[index]) for index in guarded)
        ]
    elif isinstance(node, UnionNode):
        merged = set()
        for child in node.children():
            merged.update(execute_plan(child, store, budget, precomputed))
        rows = list(merged)
    elif isinstance(node, DistinctNode):
        rows = list(set(execute_plan(node.child, store, budget, precomputed)))
    else:
        raise TypeError("cannot execute %r" % (node,))
    node.actual_rows = len(rows)
    if budget is not None:
        if isinstance(node, RelationNode) and node.charged:
            # The caller paid for these rows when it materialized them;
            # a row must be charged exactly once.
            budget.check_time(operator=type(node).__name__)
        else:
            budget.charge_rows(len(rows), operator=type(node).__name__)
            budget.check_time(operator=type(node).__name__)
    return rows


def collect_parallel_units(plan: PlanNode) -> List[PlanNode]:
    """The independently evaluable subtrees of *plan*: the children of
    every union reachable from the root through join/unary operators
    (without crossing another union).

    For a JUCQ plan this is every cover fragment's CQ disjuncts; for a
    UCQ plan, the disjuncts themselves — the paper's embarrassingly
    parallel shape, read straight off the plan.
    """
    units: List[PlanNode] = []

    def walk(node: PlanNode) -> None:
        if isinstance(node, (ProjectNode, DistinctNode, NonLiteralFilterNode)):
            walk(node.child)
        elif isinstance(node, JoinNode):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnionNode):
            units.extend(node.children())

    walk(plan)
    return units


def execute_plan_parallel(
    plan: PlanNode,
    store: TripleStore,
    budget,
    pool: ExecutorPool,
) -> List[Row]:
    """:func:`execute_plan` with union children fanned out to *pool*.

    A task graph evaluates each parallel unit on a worker (each charges
    the shared budget, so a trip in one unit aborts the siblings at
    their next charge), then a combine task runs the ordinary
    interpreter over the full plan with the unit results precomputed —
    the merge/join/projection structure and therefore the answer are
    exactly the serial ones.
    """
    units = collect_parallel_units(plan)
    if len(units) <= 1 or not pool.usable():
        return execute_plan(plan, store, budget)
    graph = TaskGraph()
    names = []
    for index, unit in enumerate(units):
        name = "unit-%d" % index
        names.append(name)
        graph.add(
            name,
            lambda done, unit=unit: (id(unit), execute_plan(unit, store, budget)),
        )
    graph.add(
        "combine",
        lambda done: execute_plan(
            plan, store, budget,
            precomputed=dict(done[name] for name in names),
        ),
        after=names,
    )
    return graph.run(pool)["combine"]


class Executor:
    """Plans and runs queries for one store + backend pair.

    >>> # store = TripleStore.from_graph(graph)
    >>> # Executor(store).run(query).answer()
    """

    def __init__(
        self,
        store: TripleStore,
        backend: BackendProfile = HASH_BACKEND,
        engine: str = "materialized",
    ):
        if engine not in ENGINES:
            raise ValueError(
                "unknown engine %r (choose from %s)" % (engine, ENGINES)
            )
        self.store = store
        self.backend = backend
        self.engine = engine
        self.planner = Planner(store, backend)

    def run(
        self,
        query: PlannableQuery,
        budget=None,
        engine: Optional[str] = None,
        pool: Optional[ExecutorPool] = None,
    ) -> ExecutionResult:
        """Plan and execute *query* on the chosen physical engine.

        Raises :class:`~repro.storage.backends.QueryTooLargeError` when
        the query exceeds the backend's parse limit, and
        :class:`~repro.resilience.errors.BudgetExceeded` when a
        ``budget`` is given and the evaluation outgrows it — with the
        partial per-node cardinalities (and, pipelined or columnar,
        the operator metrics and partial answer) attached to the
        raised error.

        ``pool`` (an :class:`~repro.parallel.ExecutorPool`) evaluates
        union children — UCQ disjuncts, cover-fragment extents —
        concurrently on either engine; the answer is identical, per
        the parallel differential harness."""
        engine = engine or self.engine
        if engine not in ENGINES:
            raise ValueError(
                "unknown engine %r (choose from %s)" % (engine, ENGINES)
            )
        start = time.perf_counter()
        plan = self.planner.plan(query)
        try:
            if engine == "pipelined":
                rows, metrics = run_on_store(
                    plan, self.store, budget=budget, pool=pool
                )
            elif engine == "columnar":
                from ..columnar.engine import run_columnar

                rows, metrics = run_columnar(
                    plan, self.store, budget=budget, pool=pool
                )
            else:
                metrics = None
                if budget is not None:
                    budget.start()
                if pool is not None and pool.usable():
                    rows = execute_plan_parallel(plan, self.store, budget, pool)
                else:
                    rows = execute_plan(plan, self.store, budget)
        except Exception as exc:
            self._attach_partial(exc, plan, engine)
            raise
        elapsed = time.perf_counter() - start
        return ExecutionResult(
            plan, rows, self.store, elapsed, metrics=metrics, engine=engine
        )

    def _attach_partial(self, exc, plan: PlanNode, engine: str) -> None:
        """Satellite of a budget abort: the error carries how far the
        plan got (completed-subtree cardinalities, pipeline metrics,
        decoded partial answer) instead of erasing the evidence."""
        if not hasattr(exc, "diagnostics"):
            return
        partial = getattr(exc, "partial", None) or {}
        partial.setdefault("engine", engine)
        partial["node_cardinalities"] = [
            (repr(node), node.estimated_rows, node.actual_rows)
            for node in plan.walk()
        ]
        exc.partial = partial
        partial_rows = getattr(exc, "partial_rows", None)
        if partial_rows is not None:
            exc.partial_answer = frozenset(
                self.store.decode_row(row) for row in partial_rows
            )

    def estimated_cost(self, query: PlannableQuery) -> float:
        """The cost model's price for *query*, without executing it."""
        return self.planner.plan(query).total_estimated_cost()
