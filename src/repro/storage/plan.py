"""Physical plan nodes — compatibility facade.

The plan node classes moved to :mod:`repro.engine.ir`: one
backend-neutral IR that the planner, the cost model, EXPLAIN and every
executor (materialized, pipelined, SQL lowering) share.  This module
re-exports them so existing imports keep working.
"""

from __future__ import annotations

from ..engine.ir import (
    ColumnLabel,
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    PositionSpec,
    ProjectNode,
    ProjectionSpec,
    RelationNode,
    ScanNode,
    UnionNode,
)

__all__ = [
    "ColumnLabel",
    "DistinctNode",
    "EmptyNode",
    "JoinNode",
    "NonLiteralFilterNode",
    "PlanNode",
    "PositionSpec",
    "ProjectNode",
    "ProjectionSpec",
    "RelationNode",
    "ScanNode",
    "UnionNode",
]
