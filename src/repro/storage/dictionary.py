"""Dictionary encoding of RDF terms.

RDF platforms built over RDBMSs (paper reference [4]) store a triple
table of integer codes plus a dictionary mapping codes to terms, so
joins compare integers rather than strings.  This module provides that
bidirectional mapping: encoding is dense (ids are assigned 0,1,2,… in
first-seen order) which lets the statistics module use plain arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..rdf.terms import Literal, Term


class Dictionary:
    """A bidirectional, append-only Term ↔ int mapping.

    Literal ids are tracked separately so the executor can apply the
    non-literal guards reformulation emits without decoding terms.

    >>> from repro.rdf.terms import URI
    >>> d = Dictionary()
    >>> d.encode(URI("http://e/a"))
    0
    >>> d.decode(0)
    URI('http://e/a')
    """

    __slots__ = ("_term_to_id", "_id_to_term", "_literal_ids", "_holes")

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Optional[Term]] = []
        self._literal_ids: Set[int] = set()
        # Reserved-but-unassigned ids: the hierarchy-aware encoder
        # leaves spare slots inside each subtree's id region so a later
        # schema insert can land *inside* the interval (bounded
        # incremental growth without re-encoding).
        self._holes: Set[int] = set()

    def encode(self, term: Term) -> int:
        """Return the id of *term*, assigning a fresh one when new."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
            if isinstance(term, Literal):
                self._literal_ids.add(term_id)
        return term_id

    def reserve(self, count: int = 1) -> List[int]:
        """Reserve *count* fresh ids with no term attached (holes).

        A hole participates in the dense id space — :meth:`decode`
        raises on it and :meth:`terms` reports it as None — until
        :meth:`assign` fills it.  The hierarchy-aware encoder uses
        holes as slack inside interval regions.
        """
        start = len(self._id_to_term)
        ids = list(range(start, start + count))
        self._id_to_term.extend([None] * count)
        self._holes.update(ids)
        return ids

    def assign(self, term_id: int, term: Term) -> int:
        """Fill the hole *term_id* with *term* (which must be new)."""
        if term_id not in self._holes:
            raise KeyError("id %d is not an unassigned hole" % term_id)
        if term in self._term_to_id:
            raise ValueError("%r is already encoded" % (term,))
        self._holes.discard(term_id)
        self._id_to_term[term_id] = term
        self._term_to_id[term] = term_id
        if isinstance(term, Literal):
            self._literal_ids.add(term_id)
        return term_id

    def is_hole(self, term_id: int) -> bool:
        """True when *term_id* is reserved but has no term yet."""
        return term_id in self._holes

    @property
    def hole_count(self) -> int:
        return len(self._holes)

    def is_literal_id(self, term_id: int) -> bool:
        """True when *term_id* encodes a literal."""
        return term_id in self._literal_ids

    def encode_all(self, terms: Iterable[Term]) -> List[int]:
        return [self.encode(term) for term in terms]

    def lookup(self, term: Term) -> Optional[int]:
        """The id of *term*, or None when it has never been encoded.

        Unlike :meth:`encode`, never mutates the dictionary — the query
        path uses this so that a constant absent from the data yields
        an empty scan rather than a dictionary entry.
        """
        return self._term_to_id.get(term)

    def terms(self) -> List[Optional[Term]]:
        """The full id → term table in id order (None marks a hole).

        Because ids are dense and assigned in first-seen order, a
        checkpoint that persists this list rebuilds an *identical*
        dictionary by re-encoding the terms in sequence — the
        durability layer relies on this to keep encoded triples valid
        across restarts.
        """
        return list(self._id_to_term)

    def decode(self, term_id: int) -> Term:
        try:
            term = self._id_to_term[term_id]
        except IndexError:
            raise KeyError("unknown term id %d" % term_id)
        if term is None:
            raise KeyError("term id %d is an unassigned hole" % term_id)
        return term

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def __repr__(self) -> str:
        return "Dictionary(<%d terms>)" % len(self)
