"""Dictionary encoding of RDF terms.

RDF platforms built over RDBMSs (paper reference [4]) store a triple
table of integer codes plus a dictionary mapping codes to terms, so
joins compare integers rather than strings.  This module provides that
bidirectional mapping: encoding is dense (ids are assigned 0,1,2,… in
first-seen order) which lets the statistics module use plain arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..rdf.terms import Literal, Term


class Dictionary:
    """A bidirectional, append-only Term ↔ int mapping.

    Literal ids are tracked separately so the executor can apply the
    non-literal guards reformulation emits without decoding terms.

    >>> from repro.rdf.terms import URI
    >>> d = Dictionary()
    >>> d.encode(URI("http://e/a"))
    0
    >>> d.decode(0)
    URI('http://e/a')
    """

    __slots__ = ("_term_to_id", "_id_to_term", "_literal_ids")

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []
        self._literal_ids: Set[int] = set()

    def encode(self, term: Term) -> int:
        """Return the id of *term*, assigning a fresh one when new."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
            if isinstance(term, Literal):
                self._literal_ids.add(term_id)
        return term_id

    def is_literal_id(self, term_id: int) -> bool:
        """True when *term_id* encodes a literal."""
        return term_id in self._literal_ids

    def encode_all(self, terms: Iterable[Term]) -> List[int]:
        return [self.encode(term) for term in terms]

    def lookup(self, term: Term) -> Optional[int]:
        """The id of *term*, or None when it has never been encoded.

        Unlike :meth:`encode`, never mutates the dictionary — the query
        path uses this so that a constant absent from the data yields
        an empty scan rather than a dictionary entry.
        """
        return self._term_to_id.get(term)

    def terms(self) -> List[Term]:
        """The full id → term table in id order.

        Because ids are dense and assigned in first-seen order, a
        checkpoint that persists this list rebuilds an *identical*
        dictionary by re-encoding the terms in sequence — the
        durability layer relies on this to keep encoded triples valid
        across restarts.
        """
        return list(self._id_to_term)

    def decode(self, term_id: int) -> Term:
        try:
            return self._id_to_term[term_id]
        except IndexError:
            raise KeyError("unknown term id %d" % term_id)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def __repr__(self) -> str:
        return "Dictionary(<%d terms>)" % len(self)
