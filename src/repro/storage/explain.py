"""EXPLAIN: human-readable physical plans.

Demo step 3 lets attendees "inspect: the chosen query plan;
cardinalities and costs of (sub)queries".  :func:`explain` renders an
annotated (and optionally executed) plan as an indented operator tree,
one line per node, with estimated rows, estimated cost and — when the
plan has been executed — actual rows, in the style of an RDBMS EXPLAIN
ANALYZE.
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.namespaces import shorten
from ..rdf.terms import URI
from ..engine.ir import (
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    UnionNode,
)
from .store import TripleStore


def _describe(node: PlanNode, store: Optional[TripleStore]) -> str:
    """One-line operator description with decoded constants."""

    def decode(term_id: int) -> str:
        if store is None:
            return "#%d" % term_id
        term = store.dictionary.decode(term_id)
        if isinstance(term, URI):
            return shorten(term)
        return term.n3()

    def position(kind, value) -> str:
        if kind == "var":
            return "?%s" % value.name
        if kind == "range":
            return "[#%d..#%d)" % value
        if kind == "term":
            return value.n3()
        return decode(value)

    if isinstance(node, ScanNode):
        positions = ", ".join(
            position(kind, value) for kind, value in node.positions
        )
        described = "Scan(%s)" % positions
        intervals = getattr(node, "interval_info", None)
        if intervals:
            described += "  {%s}" % "; ".join(
                "interval %s [%d..%d) collapses %d branches"
                % (
                    decode(store.dictionary.lookup(anchor))
                    if store is not None
                    and store.dictionary.lookup(anchor) is not None
                    else anchor.n3(),
                    lo,
                    hi,
                    branches,
                )
                for lo, hi, anchor, branches in intervals
            )
        return described
    if isinstance(node, JoinNode):
        keys = ", ".join("?%s" % v.name for v in node.join_variables)
        return "%sJoin(%s)" % (
            node.algorithm.replace("_", " ").title().replace(" ", ""),
            keys or "cross product",
        )
    if isinstance(node, ProjectNode):
        columns = ", ".join(
            position(kind, value) for kind, value in node.specs
        )
        return "Project(%s)" % columns
    if isinstance(node, UnionNode):
        return "Union(%d inputs, distinct)" % len(node.children())
    if isinstance(node, DistinctNode):
        return "Distinct"
    if isinstance(node, NonLiteralFilterNode):
        return "Filter(non-literal: %s)" % ", ".join(
            "?%s" % v.name for v in node.variables
        )
    if isinstance(node, EmptyNode):
        return "Empty"
    return repr(node)


def explain(
    plan: PlanNode,
    store: Optional[TripleStore] = None,
    max_union_children: int = 3,
) -> str:
    """Render *plan* as an indented tree.

    Large unions (UCQ reformulations can have thousands of inputs) are
    elided after ``max_union_children`` branches, with a summary line —
    exactly the shape of the demo's plan panel.

    >>> # explain(Executor(store).run(query).plan, store)
    """
    lines: List[str] = []

    def render(node: PlanNode, depth: int) -> None:
        annotation = "rows≈%.0f cost≈%.1f" % (
            node.estimated_rows,
            node.estimated_cost,
        )
        if node.actual_rows is not None:
            annotation += " actual=%d" % node.actual_rows
        lines.append("%s%s  [%s]" % ("  " * depth, _describe(node, store), annotation))
        children = node.children()
        if isinstance(node, UnionNode) and len(children) > max_union_children:
            for child in children[:max_union_children]:
                render(child, depth + 1)
            elided = children[max_union_children:]
            total_rows = sum(child.estimated_rows for child in elided)
            lines.append(
                "%s… %d more inputs (rows≈%.0f)"
                % ("  " * (depth + 1), len(elided), total_rows)
            )
            return
        for child in children:
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)


def plan_summary(plan: PlanNode) -> dict:
    """Aggregate plan metrics: node counts per operator, total cost,
    scan count (the parse-relevant size)."""
    counts: dict = {}
    interval_atoms = 0
    branches_collapsed = 0
    for node in plan.walk():
        name = type(node).__name__
        counts[name] = counts.get(name, 0) + 1
        for _lo, _hi, _anchor, branches in (
            getattr(node, "interval_info", None) or ()
        ):
            interval_atoms += 1
            branches_collapsed += max(0, branches - 1)
    summary = {
        "operators": counts,
        "total_estimated_cost": plan.total_estimated_cost(),
        "scan_atoms": plan.atom_count(),
        "estimated_rows": plan.estimated_rows,
    }
    if interval_atoms:
        summary["interval_atoms"] = interval_atoms
        summary["branches_collapsed"] = branches_collapsed
    return summary
