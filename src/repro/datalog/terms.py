"""Datalog terms, atoms, rules and programs.

The demo shows "a simple encoding of the RDF data, constraints and
queries into Datalog programs to be evaluated by the LogicBlox engine"
(Section 5) — the *Dat* query answering technique.  This module is the
language layer of our LogicBlox stand-in: positive Datalog (no
negation, no function symbols), which is all the encoding needs.

Constants are arbitrary hashable Python values (the RDF encoding uses
:class:`repro.rdf.terms.Term` instances directly).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple, Union


class DVar:
    """A Datalog variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("DVar is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, DVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("DVar", self.name))

    def __repr__(self) -> str:
        return "?%s" % self.name


#: A Datalog argument: a variable or a constant.
DTerm = Union[DVar, Hashable]


class DatalogAtom:
    """``predicate(arg1, …, argN)``."""

    __slots__ = ("predicate", "args")

    def __init__(self, predicate: str, args: Sequence[DTerm]):
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, name, value):
        raise AttributeError("DatalogAtom is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Set[DVar]:
        return {arg for arg in self.args if isinstance(arg, DVar)}

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, binding: Dict[DVar, Hashable]) -> "DatalogAtom":
        return DatalogAtom(
            self.predicate,
            [binding.get(arg, arg) if isinstance(arg, DVar) else arg for arg in self.args],
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DatalogAtom)
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash((self.predicate, self.args))

    def __repr__(self) -> str:
        return "%s(%s)" % (self.predicate, ", ".join(repr(a) for a in self.args))


class DatalogRule:
    """``head :- body``; every head variable must occur in the body
    (range restriction, required for bottom-up evaluation)."""

    __slots__ = ("head", "body")

    def __init__(self, head: DatalogAtom, body: Sequence[DatalogAtom]):
        body = tuple(body)
        if not body:
            raise ValueError("rules must have a non-empty body (use facts instead)")
        body_variables: Set[DVar] = set()
        for atom in body:
            body_variables.update(atom.variables())
        unsafe = head.variables() - body_variables
        if unsafe:
            raise ValueError("unsafe head variables: %s" % sorted(v.name for v in unsafe))
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        raise AttributeError("DatalogRule is immutable")

    def __repr__(self) -> str:
        return "%r :- %s" % (self.head, ", ".join(repr(a) for a in self.body))


class DatalogProgram:
    """A set of rules plus extensional facts."""

    def __init__(self):
        self.rules: List[DatalogRule] = []
        self.facts: List[Tuple[str, Tuple[Hashable, ...]]] = []

    def add_rule(self, rule: DatalogRule) -> None:
        self.rules.append(rule)

    def add_fact(self, predicate: str, args: Sequence[Hashable]) -> None:
        for arg in args:
            if isinstance(arg, DVar):
                raise ValueError("facts must be ground")
        self.facts.append((predicate, tuple(args)))

    def __repr__(self) -> str:
        return "DatalogProgram(<%d rules, %d facts>)" % (
            len(self.rules),
            len(self.facts),
        )
