"""Datalog engine and the Dat encoding of RDF query answering (S9)."""

from .encoding import answer_query, encode, entailment_rules
from .engine import Database, EvaluationResult, Relation, evaluate_program
from .terms import DatalogAtom, DatalogProgram, DatalogRule, DVar

__all__ = [
    "DVar",
    "Database",
    "DatalogAtom",
    "DatalogProgram",
    "DatalogRule",
    "EvaluationResult",
    "Relation",
    "answer_query",
    "encode",
    "entailment_rules",
    "evaluate_program",
]
