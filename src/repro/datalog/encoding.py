"""Encoding RDF data, constraints and queries into Datalog (Dat).

The translation the demo runs on LogicBlox:

* every triple ``s p o`` of the graph becomes the fact
  ``triple(s, p, o)`` (queries match explicit triples of any kind);
* every *admissible* constraint additionally populates a dedicated
  predicate — ``sc``, ``sp``, ``dom``, ``rng`` — which is what the
  entailment rules read; inadmissible (meta-level) constraints thus
  remain visible to queries but fire no rules, exactly as in the
  saturation and reformulation engines;
* the immediate entailment rules of the DB fragment become Datalog
  rules, concluding both into the dedicated predicates (for
  schema-level chaining) and into ``triple`` (entailed constraints are
  part of ``G∞`` and must be query-visible);
* a CQ ``q(x̄) :- t1, …, tα`` becomes a rule deriving ``answer(x̄)``.

Evaluating the program bottom-up saturates the data *and* answers the
query in one fixpoint — an alternative to both Sat (no stored
saturation) and Ref (no reformulated SQL).

Literals cannot be triple subjects, so the range-typing rule guards its
conclusion with the ``subjectable`` EDB predicate (URIs and blank nodes
only), matching the other engines' treatment exactly.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from ..query.algebra import ConjunctiveQuery, Variable
from ..rdf.graph import Graph
from ..rdf.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from ..rdf.terms import BlankNode, Term, URI
from ..schema.constraints import ConstraintKind, is_admissible_constraint
from ..schema.schema import Schema
from .engine import evaluate_program
from .terms import DatalogAtom, DatalogProgram, DatalogRule, DVar

TRIPLE = "triple"
SUBCLASS = "sc"
SUBPROPERTY = "sp"
DOMAIN = "dom"
RANGE = "rng"
SUBJECTABLE = "subjectable"
ANSWER = "answer"

_KIND_TO_PREDICATE = {
    ConstraintKind.SUBCLASS: SUBCLASS,
    ConstraintKind.SUBPROPERTY: SUBPROPERTY,
    ConstraintKind.DOMAIN: DOMAIN,
    ConstraintKind.RANGE: RANGE,
}


def entailment_rules() -> Tuple[DatalogRule, ...]:
    """The DB fragment's immediate entailment rules as Datalog."""
    s, o = DVar("s"), DVar("o")
    c1, c2, c3 = DVar("c1"), DVar("c2"), DVar("c3")
    p1, p2, p3 = DVar("p1"), DVar("p2"), DVar("p3")

    def t(*args) -> DatalogAtom:
        return DatalogAtom(TRIPLE, args)

    def a(predicate: str, *args) -> DatalogAtom:
        return DatalogAtom(predicate, args)

    return (
        # Schema-level closure over the dedicated predicates.
        DatalogRule(a(SUBCLASS, c1, c3), [a(SUBCLASS, c1, c2), a(SUBCLASS, c2, c3)]),
        DatalogRule(a(SUBPROPERTY, p1, p3),
                    [a(SUBPROPERTY, p1, p2), a(SUBPROPERTY, p2, p3)]),
        DatalogRule(a(DOMAIN, p1, c1), [a(SUBPROPERTY, p1, p2), a(DOMAIN, p2, c1)]),
        DatalogRule(a(RANGE, p1, c1), [a(SUBPROPERTY, p1, p2), a(RANGE, p2, c1)]),
        DatalogRule(a(DOMAIN, p1, c2), [a(DOMAIN, p1, c1), a(SUBCLASS, c1, c2)]),
        DatalogRule(a(RANGE, p1, c2), [a(RANGE, p1, c1), a(SUBCLASS, c1, c2)]),
        # Entailed constraints are query-visible triples.
        DatalogRule(t(c1, RDFS_SUBCLASSOF, c2), [a(SUBCLASS, c1, c2)]),
        DatalogRule(t(p1, RDFS_SUBPROPERTYOF, p2), [a(SUBPROPERTY, p1, p2)]),
        DatalogRule(t(p1, RDFS_DOMAIN, c1), [a(DOMAIN, p1, c1)]),
        DatalogRule(t(p1, RDFS_RANGE, c1), [a(RANGE, p1, c1)]),
        # Instance-level rules.  The left argument of an admissible
        # sc/sp/dom/rng fact is never a built-in, so triple(s, p1, o)
        # joined through p1 only ever matches data triples.
        DatalogRule(t(s, RDF_TYPE, c2), [t(s, RDF_TYPE, c1), a(SUBCLASS, c1, c2)]),
        DatalogRule(t(s, p2, o), [t(s, p1, o), a(SUBPROPERTY, p1, p2)]),
        DatalogRule(t(s, RDF_TYPE, c1), [t(s, p1, o), a(DOMAIN, p1, c1)]),
        DatalogRule(t(o, RDF_TYPE, c1),
                    [t(s, p1, o), a(RANGE, p1, c1), a(SUBJECTABLE, o)]),
    )


def encode(
    graph: Graph,
    schema: Schema,
    query: ConjunctiveQuery,
) -> DatalogProgram:
    """Build the full Dat program for answering *query* over *graph*
    under the constraints of *schema* (merged with those in the graph).
    """
    program = DatalogProgram()
    subjectable: Set[Term] = set()

    def note_subjectable(term: Term) -> None:
        if isinstance(term, (URI, BlankNode)) and term not in subjectable:
            subjectable.add(term)
            program.add_fact(SUBJECTABLE, (term,))

    def add_constraint_fact(triple) -> None:
        if is_admissible_constraint(triple):
            from ..schema.constraints import Constraint

            constraint = Constraint.from_triple(triple)
            program.add_fact(
                _KIND_TO_PREDICATE[constraint.kind],
                (constraint.left, constraint.right),
            )

    seen_triples = set()
    for triple in graph:
        seen_triples.add(triple)
        program.add_fact(TRIPLE, triple.as_tuple())
        note_subjectable(triple.subject)
        note_subjectable(triple.object)
        if triple.is_schema_triple():
            add_constraint_fact(triple)
    for constraint in schema.direct_constraints():
        triple = constraint.to_triple()
        if triple not in seen_triples:
            program.add_fact(TRIPLE, triple.as_tuple())
            note_subjectable(triple.subject)
            note_subjectable(triple.object)
            add_constraint_fact(triple)

    for rule in entailment_rules():
        program.add_rule(rule)

    head_args = []
    for item in query.head:
        if isinstance(item, Variable):
            head_args.append(DVar(item.name))
        else:
            head_args.append(item)
    body = []
    for atom in query.atoms:
        args = [
            DVar(term.name) if isinstance(term, Variable) else term
            for term in atom.as_tuple()
        ]
        body.append(DatalogAtom(TRIPLE, args))
    program.add_rule(DatalogRule(DatalogAtom(ANSWER, head_args), body))
    return program


def answer_query(
    graph: Graph,
    schema: Schema,
    query: ConjunctiveQuery,
) -> FrozenSet[Tuple[Term, ...]]:
    """The Dat technique end to end: encode, evaluate, read ``answer``.

    Matches ``q(G∞)`` — the property tests check it against both Sat
    and Ref.
    """
    result = evaluate_program(encode(graph, schema, query))
    return frozenset(result.facts(ANSWER))
