"""Semi-naive bottom-up Datalog evaluation.

The standard fixpoint algorithm: each round instantiates every rule
requiring at least one body atom to match a tuple derived in the
previous round (the *delta*), so no derivation is recomputed.
Relations keep per-column hash indexes, giving index-nested-loop
matching of partially bound atoms — the engine comfortably saturates
the LUBM-scale programs of experiment E5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .terms import DatalogAtom, DatalogProgram, DatalogRule, DVar

Fact = Tuple[Hashable, ...]


class Relation:
    """The extension of one predicate, with per-column indexes."""

    def __init__(self, arity: int):
        self.arity = arity
        self._tuples: Set[Fact] = set()
        self._indexes: List[Dict[Hashable, Set[Fact]]] = [
            defaultdict(set) for _ in range(arity)
        ]

    def add(self, fact: Fact) -> bool:
        if fact in self._tuples:
            return False
        self._tuples.add(fact)
        for position, value in enumerate(fact):
            self._indexes[position][value].add(fact)
        return True

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._tuples

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._tuples)

    def candidates(self, bound: Sequence[Tuple[int, Hashable]]) -> Iterable[Fact]:
        """Facts agreeing with the (position, value) constraints, via
        the most selective column index."""
        if not bound:
            return self._tuples
        best: Optional[Set[Fact]] = None
        for position, value in bound:
            bucket = self._indexes[position].get(value)
            if bucket is None:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        assert best is not None
        if len(bound) == 1:
            return best
        return (
            fact
            for fact in best
            if all(fact[position] == value for position, value in bound)
        )


class Database:
    """Predicate name → relation."""

    def __init__(self):
        self._relations: Dict[str, Relation] = {}

    def relation(self, predicate: str, arity: int) -> Relation:
        existing = self._relations.get(predicate)
        if existing is None:
            existing = Relation(arity)
            self._relations[predicate] = existing
        elif existing.arity != arity:
            raise ValueError(
                "predicate %r used with arities %d and %d"
                % (predicate, existing.arity, arity)
            )
        return existing

    def get(self, predicate: str) -> Optional[Relation]:
        return self._relations.get(predicate)

    def fact_count(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def facts(self, predicate: str) -> Set[Fact]:
        relation = self._relations.get(predicate)
        return set(relation) if relation else set()


def _match_atom(
    atom: DatalogAtom,
    database: Database,
    binding: Dict[DVar, Hashable],
) -> Iterator[Dict[DVar, Hashable]]:
    """Extend *binding* in every way that makes *atom* hold."""
    relation = database.get(atom.predicate)
    if relation is None:
        return
    bound: List[Tuple[int, Hashable]] = []
    for position, arg in enumerate(atom.args):
        if isinstance(arg, DVar):
            value = binding.get(arg)
            if value is not None:
                bound.append((position, value))
        else:
            bound.append((position, arg))
    for fact in relation.candidates(bound):
        extended = dict(binding)
        consistent = True
        for position, arg in enumerate(atom.args):
            if isinstance(arg, DVar):
                existing = extended.get(arg)
                if existing is None:
                    extended[arg] = fact[position]
                elif existing != fact[position]:
                    consistent = False
                    break
            elif arg != fact[position]:
                consistent = False
                break
        if consistent:
            yield extended


def _order_body(rule: DatalogRule, delta_position: int) -> List[int]:
    """A join order for the rule body: the delta atom first (it is the
    small, novel input), then greedily the atom with the most positions
    bound by constants or already-bound variables.  Without this,
    rules whose written order starts with unselective atoms (e.g. the
    three type atoms of LUBM Q9) degenerate into cross products."""
    ordered = [delta_position]
    bound: Set[DVar] = set(rule.body[delta_position].variables())
    remaining = [
        index for index in range(len(rule.body)) if index != delta_position
    ]
    while remaining:
        def boundness(index: int) -> int:
            atom = rule.body[index]
            return sum(
                1
                for arg in atom.args
                if not isinstance(arg, DVar) or arg in bound
            )

        best = max(remaining, key=boundness)
        remaining.remove(best)
        ordered.append(best)
        bound.update(rule.body[best].variables())
    return ordered


def _instantiate_rule(
    rule: DatalogRule,
    database: Database,
    delta: Database,
    delta_position: int,
) -> Iterator[Fact]:
    """Head facts derivable with body atom *delta_position* matched in
    the delta and the rest in the full database."""
    ordered = _order_body(rule, delta_position)

    def extend(step: int, binding: Dict[DVar, Hashable]) -> Iterator[Dict[DVar, Hashable]]:
        if step == len(ordered):
            yield binding
            return
        index = ordered[step]
        source = delta if index == delta_position else database
        for extended in _match_atom(rule.body[index], source, binding):
            yield from extend(step + 1, extended)

    for binding in extend(0, {}):
        yield tuple(
            binding[arg] if isinstance(arg, DVar) else arg for arg in rule.head.args
        )


class EvaluationResult:
    """The fixpoint database plus evaluation metrics."""

    def __init__(self, database: Database, rounds: int, derived: int):
        self.database = database
        self.rounds = rounds
        self.derived = derived

    def facts(self, predicate: str) -> Set[Fact]:
        return self.database.facts(predicate)


def evaluate_program(program: DatalogProgram) -> EvaluationResult:
    """Semi-naive evaluation to fixpoint.

    >>> from repro.datalog.terms import DatalogAtom, DatalogProgram, DatalogRule, DVar
    >>> p = DatalogProgram()
    >>> p.add_fact("edge", (1, 2)); p.add_fact("edge", (2, 3))
    >>> x, y, z = DVar("x"), DVar("y"), DVar("z")
    >>> p.add_rule(DatalogRule(DatalogAtom("path", (x, y)), [DatalogAtom("edge", (x, y))]))
    >>> p.add_rule(DatalogRule(DatalogAtom("path", (x, z)),
    ...            [DatalogAtom("edge", (x, y)), DatalogAtom("path", (y, z))]))
    >>> sorted(evaluate_program(p).facts("path"))
    [(1, 2), (1, 3), (2, 3)]
    """
    database = Database()
    delta = Database()
    for predicate, args in program.facts:
        relation = database.relation(predicate, len(args))
        if relation.add(args):
            delta.relation(predicate, len(args)).add(args)
    # Declare head relations so arities are fixed up front.
    for rule in program.rules:
        database.relation(rule.head.predicate, rule.head.arity)

    rounds = 0
    derived = 0
    while delta.fact_count():
        rounds += 1
        next_delta = Database()
        for rule in program.rules:
            for position in range(len(rule.body)):
                if delta.get(rule.body[position].predicate) is None:
                    continue
                # Materialize before inserting: the rule may derive into
                # a relation its own body is currently iterating.
                for fact in list(
                    _instantiate_rule(rule, database, delta, position)
                ):
                    relation = database.relation(rule.head.predicate, len(fact))
                    if relation.add(fact):
                        next_delta.relation(rule.head.predicate, len(fact)).add(fact)
                        derived += 1
        delta = next_delta
    return EvaluationResult(database, rounds, derived)
