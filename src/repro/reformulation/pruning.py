"""CQ containment, minimization and UCQ subsumption pruning.

Reformulation engines (MASTRO [8], the rewriting engines surveyed in
[10]) prune their UCQ outputs: a disjunct contained in another disjunct
contributes no answers and only costs evaluation time.  Containment of
conjunctive queries is the classical homomorphism test (Chandra &
Merlin): ``q1 ⊑ q2`` iff there is a homomorphism from ``q2`` into
``q1`` mapping head to head — variables of the *target* query are
frozen (treated as constants) and the *source* query's variables range
over the target's terms.

Provided here:

* :func:`find_homomorphism` / :func:`is_contained` — the test itself;
* :func:`minimize` — remove redundant atoms from a CQ (its core);
* :func:`prune_subsumed` — drop UCQ disjuncts contained in another
  disjunct; quadratic in the number of disjuncts, so intended for the
  moderate unions where evaluation savings repay the pruning cost
  (the ablation benchmark A2 measures both sides).

Non-literal guards are honoured conservatively: a guarded disjunct may
reject rows its unguarded image would return, so a disjunct is only
pruned when the containing disjunct's guards map onto guarded
variables (or non-literal constants) of the pruned one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..query.algebra import (
    ConjunctiveQuery,
    PatternTerm,
    TriplePattern,  # noqa: F401  (used by the minimize() doctest)
    UnionQuery,
    Variable,
)
from ..rdf.terms import Literal

#: A homomorphism: source variables → target pattern terms.
Homomorphism = Dict[Variable, PatternTerm]


def _extend(
    mapping: Homomorphism,
    source_term: PatternTerm,
    target_term: PatternTerm,
) -> Optional[Homomorphism]:
    """Extend *mapping* so source_term ↦ target_term, or None."""
    if isinstance(source_term, Variable):
        bound = mapping.get(source_term)
        if bound is None:
            extended = dict(mapping)
            extended[source_term] = target_term
            return extended
        return mapping if bound == target_term else None
    # Constants must match exactly (target variables are frozen).
    return mapping if source_term == target_term else None


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Homomorphism]:
    """A homomorphism from *source* into *target* (head to head), or
    None.  Target variables are frozen constants; source variables map
    to arbitrary target terms."""
    if source.arity != target.arity:
        return None
    mapping: Optional[Homomorphism] = {}
    for source_item, target_item in zip(source.head, target.head):
        mapping = _extend(mapping, source_item, target_item)
        if mapping is None:
            return None

    atoms = list(source.atoms)

    def search(index: int, current: Homomorphism) -> Optional[Homomorphism]:
        if index == len(atoms):
            return current
        atom = atoms[index]
        for candidate in target.atoms:
            step: Optional[Homomorphism] = current
            for source_term, target_term in zip(
                atom.as_tuple(), candidate.as_tuple()
            ):
                step = _extend(step, source_term, target_term)
                if step is None:
                    break
            if step is not None:
                result = search(index + 1, step)
                if result is not None:
                    return result
        return None

    return search(0, mapping)


def _guards_preserved(
    container: ConjunctiveQuery,
    contained: ConjunctiveQuery,
    homomorphism: Homomorphism,
) -> bool:
    """True when every guard of *container* lands on something the
    *contained* query already guarantees non-literal."""
    for guarded in container.nonliteral_variables:
        image = homomorphism.get(guarded, guarded)
        if isinstance(image, Variable):
            if image not in contained.nonliteral_variables:
                return False
        elif isinstance(image, Literal):
            return False
    return True


def is_contained(
    contained: ConjunctiveQuery, container: ConjunctiveQuery
) -> bool:
    """``contained ⊑ container``: every answer of *contained* (over any
    graph) is an answer of *container*."""
    if contained.nonliteral_variables:
        # A guard only removes answers, so it cannot break containment
        # of the guarded query in anything.
        pass
    homomorphism = find_homomorphism(container, contained)
    if homomorphism is None:
        return False
    return _guards_preserved(container, contained, homomorphism)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of *query*: atoms removed while an endomorphism onto
    the remainder exists (classical CQ minimization).

    >>> from repro.rdf import Namespace
    >>> EX = Namespace("http://e/")
    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> redundant = ConjunctiveQuery(
    ...     [x], [TriplePattern(x, EX.p, y), TriplePattern(x, EX.p, z)])
    >>> len(minimize(redundant).atoms)
    1
    """
    current = query
    changed = True
    while changed and len(current.atoms) > 1:
        changed = False
        for index in range(len(current.atoms)):
            reduced_atoms = (
                current.atoms[:index] + current.atoms[index + 1:]
            )
            try:
                reduced = ConjunctiveQuery(
                    current.head, reduced_atoms, current.nonliteral_variables
                )
            except ValueError:
                continue  # dropping the atom orphans a head/guard var
            if find_homomorphism(current, reduced) is not None:
                current = reduced
                changed = True
                break
    return current


def prune_subsumed(union: UnionQuery) -> UnionQuery:
    """Drop disjuncts contained in another disjunct.

    Keeps the first of two mutually-contained (equivalent) disjuncts.
    The result answers identically on every graph (property-tested).
    """
    disjuncts: List[ConjunctiveQuery] = list(union.disjuncts)
    kept: List[ConjunctiveQuery] = []
    removed: Set[int] = set()
    for index, candidate in enumerate(disjuncts):
        subsumed = False
        for other_index, other in enumerate(disjuncts):
            if other_index == index or other_index in removed:
                continue
            if is_contained(candidate, other):
                if is_contained(other, candidate) and other_index > index:
                    # Equivalent pair: keep the earlier one (this one).
                    continue
                subsumed = True
                break
        if subsumed:
            removed.add(index)
        else:
            kept.append(candidate)
    return UnionQuery(kept)
