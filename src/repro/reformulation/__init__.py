"""Reformulation-based query answering: Ref (S5)."""

from .atoms import Alternative, atom_reformulation_size, reformulate_atom
from .engine import (
    ReformulationTooLarge,
    atom_alternatives,
    iterate_reformulations,
    reformulate,
    ucq_size,
)
from .jucq import jucq_for_cover, jucq_fragment_sizes, scq_reformulation
from .pruning import find_homomorphism, is_contained, minimize, prune_subsumed
from .policy import ALLEGROGRAPH_STYLE, COMPLETE, VIRTUOSO_STYLE, ReformulationPolicy

__all__ = [
    "ALLEGROGRAPH_STYLE",
    "Alternative",
    "COMPLETE",
    "ReformulationPolicy",
    "ReformulationTooLarge",
    "VIRTUOSO_STYLE",
    "atom_alternatives",
    "atom_reformulation_size",
    "find_homomorphism",
    "is_contained",
    "minimize",
    "prune_subsumed",
    "iterate_reformulations",
    "jucq_for_cover",
    "jucq_fragment_sizes",
    "reformulate",
    "scq_reformulation",
    "ucq_size",
]
