"""CQ-to-UCQ reformulation: the classical Ref strategy.

Combines the per-atom alternatives of :mod:`repro.reformulation.atoms`
into full rewritings: a disjunct is one choice of alternative per atom,
with all imposed variable bindings merged (choices binding the same
variable to different constants are incompatible and dropped).  The
number of disjuncts is the *product* of the per-atom alternative counts
when no variable is bound by two different atoms — which is how
Example 1's query reaches ``564 × 564 × 1 × 1 × 1 × 1 = 318,096`` CQs
on the LUBM schema.

Because materializing such unions is exactly the failure mode the paper
demonstrates, the module exposes:

* :func:`ucq_size` — the disjunct count *without* materialization;
* :func:`iterate_reformulations` — a lazy disjunct generator;
* :func:`reformulate` — materialization guarded by ``max_disjuncts``,
  raising :class:`ReformulationTooLarge` beyond it (the library-level
  analogue of "this huge query could not even be parsed").
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..query.algebra import (
    ConjunctiveQuery,
    Substitution,
    TriplePattern,
    UnionQuery,
    Variable,
)
from ..rdf.terms import Literal
from ..schema.schema import Schema
from .atoms import Alternative, reformulate_atom
from .policy import COMPLETE, ReformulationPolicy


class ReformulationTooLarge(RuntimeError):
    """The UCQ reformulation exceeds the allowed size.

    Mirrors the paper's observation that the 318,096-CQ reformulation
    "could not even be parsed" by the RDBMSs.
    """

    def __init__(self, size: int, limit: int):
        super().__init__(
            "UCQ reformulation has %d disjuncts, exceeding the limit of %d"
            % (size, limit)
        )
        self.size = size
        self.limit = limit


def _merge_choices(
    choices: Sequence[Alternative],
) -> Optional[Tuple[Substitution, FrozenSet[Variable]]]:
    """Merge one choice of alternative per atom into a (substitution,
    remaining non-literal guard) pair; None when the choice set is
    inconsistent — two atoms binding a shared variable differently, or
    a guarded variable bound to a literal."""
    merged: Substitution = {}
    guards: set = set()
    for choice in choices:
        for variable, value in choice.substitution.items():
            bound = merged.get(variable)
            if bound is None:
                merged[variable] = value
            elif bound != value:
                return None
        guards.update(choice.nonliteral)
    remaining: set = set()
    for variable in guards:
        bound = merged.get(variable)
        if bound is None:
            remaining.add(variable)
        elif isinstance(bound, Literal):
            return None
    return merged, frozenset(remaining)


def _build_disjunct(
    query: ConjunctiveQuery, choices: Sequence[Alternative]
) -> Optional[ConjunctiveQuery]:
    merged = _merge_choices(choices)
    if merged is None:
        return None
    substitution, guard = merged
    atoms: List[TriplePattern] = [
        choice.atom.substitute(substitution) for choice in choices
    ]
    head = query.substitute(substitution).head
    return ConjunctiveQuery(head, atoms, guard)


def atom_alternatives(
    query: ConjunctiveQuery,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> List[List[Alternative]]:
    """The per-atom alternative lists for *query* (identity first).

    ``encoding`` (opt-in hierarchy encoding) collapses covered
    subclass/subproperty enumerations into single interval atoms."""
    return [
        reformulate_atom(atom, schema, policy, encoding)
        for atom in query.atoms
    ]


def _interaction_sets(
    alternatives: Sequence[Sequence[Alternative]],
) -> Tuple[List[Set[Variable]], List[Set[Variable]]]:
    """Per atom: the variables its alternatives bind, and the
    variables they guard as non-literal."""
    bound = [
        {
            variable
            for choice in atom_choices
            for variable in choice.substitution
        }
        for atom_choices in alternatives
    ]
    guarded = [
        {
            variable
            for choice in atom_choices
            for variable in choice.nonliteral
        }
        for atom_choices in alternatives
    ]
    return bound, guarded


def ucq_size(
    query: ConjunctiveQuery,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> int:
    """The exact number of disjuncts of the UCQ reformulation, computed
    without materializing it.

    When no variable bound by one atom's alternatives is bound or
    guarded by another atom's, choices cannot interact, so the count
    is the plain product of per-atom counts (each atom's own choices
    are internally consistent by construction).  Otherwise compatible
    combinations are counted by enumerating choice tuples without ever
    building a CQ.
    """
    alternatives = atom_alternatives(query, schema, policy, encoding)
    bound, guarded = _interaction_sets(alternatives)
    independent = True
    for first in range(len(alternatives)):
        for second in range(len(alternatives)):
            if first == second:
                continue
            if bound[first] & (bound[second] | guarded[second]):
                independent = False
                break
        if not independent:
            break
    if independent:
        product = 1
        for atom_choices in alternatives:
            product *= len(atom_choices)
        return product
    count = 0
    for choices in itertools.product(*alternatives):
        if _merge_choices(choices) is not None:
            count += 1
    return count


def iterate_reformulations(
    query: ConjunctiveQuery,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> Iterator[ConjunctiveQuery]:
    """Lazily yield every disjunct of the UCQ reformulation."""
    alternatives = atom_alternatives(query, schema, policy, encoding)
    for choices in itertools.product(*alternatives):
        disjunct = _build_disjunct(query, choices)
        if disjunct is not None:
            yield disjunct


def reformulate(
    query: ConjunctiveQuery,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    max_disjuncts: Optional[int] = None,
    deduplicate: bool = False,
    encoding=None,
) -> UnionQuery:
    """The UCQ reformulation ``q_ref`` with ``q(db∞) = q_ref(db)``.

    ``max_disjuncts`` guards materialization: when the (cheaply
    pre-computed) size exceeds it, :class:`ReformulationTooLarge` is
    raised instead of building the union.  ``deduplicate`` drops
    disjuncts equal up to canonical renaming (at extra cost; sizes
    reported by the paper are without deduplication).  ``encoding``
    (opt-in) emits interval atoms for hierarchy-covered nodes, shrinking
    both the disjunct count and the per-disjunct work.
    """
    if max_disjuncts is not None:
        size = ucq_size(query, schema, policy, encoding)
        if size > max_disjuncts:
            raise ReformulationTooLarge(size, max_disjuncts)
    union = UnionQuery(
        list(iterate_reformulations(query, schema, policy, encoding))
    )
    if deduplicate:
        union = union.deduplicated()
    return union
