"""Cover-based JUCQ reformulation (the paper's contribution, [5]).

"Each cover naturally leads to a query answering strategy:
reformulating each cover subquery using any CQ-to-UCQ algorithm, and
joining the results of these reformulated queries, yields the answer
to the original query" (Section 4).  This module compiles a
:class:`~repro.query.cover.Cover` into a
:class:`~repro.query.algebra.JoinOfUnions` by reformulating each
fragment query with the engine of
:mod:`repro.reformulation.engine`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..query.algebra import HeadTerm, JoinOfUnions, UnionQuery
from ..query.cover import Cover
from ..schema.schema import Schema
from .engine import reformulate, ucq_size
from .policy import COMPLETE, ReformulationPolicy


def jucq_for_cover(
    cover: Cover,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    max_disjuncts_per_fragment: Optional[int] = None,
    encoding=None,
) -> JoinOfUnions:
    """Compile *cover* into the JUCQ it induces.

    Fragment heads expose the variables shared across fragments or
    distinguished in the covered query, so joining the fragment UCQs
    and projecting the query head reproduces the CQ's answer under
    entailment (the property tests verify this for arbitrary covers).
    ``encoding`` (opt-in hierarchy encoding) collapses covered
    subclass/subproperty unions into interval atoms per fragment.
    """
    fragments: List[Tuple[Tuple[HeadTerm, ...], UnionQuery]] = []
    for fragment in cover.fragments:
        fragment_query = cover.fragment_query(fragment)
        union = reformulate(
            fragment_query,
            schema,
            policy,
            max_disjuncts=max_disjuncts_per_fragment,
            encoding=encoding,
        )
        fragments.append((fragment_query.head, union))
    return JoinOfUnions(cover.query.head, fragments)


def scq_reformulation(
    query_cover_source,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> JoinOfUnions:
    """The SCQ reformulation of [15]: the JUCQ of the one-atom-per-
    fragment cover (each fragment a union of *atomic* queries).

    Accepts either a CQ or an existing per-atom cover.
    """
    from ..query.algebra import ConjunctiveQuery

    if isinstance(query_cover_source, ConjunctiveQuery):
        cover = Cover.per_atom(query_cover_source)
    elif isinstance(query_cover_source, Cover):
        cover = query_cover_source
    else:
        raise TypeError("scq_reformulation expects a CQ or Cover")
    return jucq_for_cover(cover, schema, policy, encoding=encoding)


def jucq_fragment_sizes(
    cover: Cover,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> List[int]:
    """Per-fragment UCQ disjunct counts, without materialization —
    the syntactic-size side of a cover's cost."""
    return [
        ucq_size(cover.fragment_query(fragment), schema, policy, encoding)
        for fragment in cover.fragments
    ]
