"""Per-atom reformulation: the backward-chaining rules of [9].

The CQ-to-UCQ algorithm of the paper's reference [9] exhaustively
applies 13 reformulation rules to the query atoms, consulting the
schema constraints backward: an atom is replaced by every atom whose
entailed consequences include it.  Working against the *closed* schema
(:class:`repro.schema.Schema` maintains inherited and widened
domain/range constraints and transitive hierarchies), one rule
application per atom is complete — the closure has pre-chained the
rules — which is how this module can return, per atom, the finite set
of *alternatives* whose union is equivalent to the atom under RDFS
entailment.

An alternative is a pair ``(atom, substitution)``: the replacement
triple pattern plus the bindings it imposes on the original atom's
variables (reformulating ``x rdf:type u`` binds the class variable
``u`` to a concrete schema class in every non-identity alternative —
the source of Example 1's 564-way unfoldings).

**Database contract.**  Reformulated queries are evaluated over the
stored graph, which must contain the explicit data triples *plus the
closed schema* (``Schema.entailed_triples()`` — a negligible number of
triples; :func:`database_graph` builds such a graph).  Under this
contract atoms over the RDFS vocabulary are answered by their identity
alternative alone, and no reformulation rule ever needs to chase
constraint chains at query time.  This mirrors [9], where the schema
component is kept closed at all times.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from ..rdf.namespaces import RDF_TYPE, SCHEMA_PROPERTIES
from ..rdf.terms import Term
from ..schema.schema import Schema
from ..query.algebra import (
    PatternTerm,
    Substitution,
    TriplePattern,
    Variable,
    fresh_variable,
)
from .policy import COMPLETE, ReformulationPolicy

class Alternative(NamedTuple):
    """One way an atom can be satisfied.

    ``atom`` — the replacement triple pattern;
    ``substitution`` — bindings imposed on the original atom's
    variables (class/property variables instantiated from the schema);
    ``nonliteral`` — variables that must bind to URIs or blank nodes
    for the alternative to be sound.  The range-typing unfolding of a
    type atom ``(s, τ, c)`` into ``(fresh, p, s)`` carries this guard:
    a triple object *can* be a literal, but a literal is never typed
    (it cannot be a subject), so matching a literal there would
    overshoot the entailment.
    """

    atom: TriplePattern
    substitution: Substitution
    nonliteral: Tuple[Variable, ...] = ()


def database_graph(data, schema: Schema):
    """Build the graph Ref strategies evaluate over: the data triples
    plus the closed schema (see module doc's database contract)."""
    from ..rdf.graph import Graph

    graph = data.copy() if isinstance(data, Graph) else Graph(data)
    graph.add_all(schema.entailed_triples())
    return graph


def _type_subproperties(schema: Schema) -> List[Term]:
    """Properties declared ``rdfs:subPropertyOf rdf:type`` (transitively):
    their triples entail type triples."""
    return sorted(schema.subproperties(RDF_TYPE), key=lambda t: t.sort_key())


def _type_alternatives_for_class(
    subject: PatternTerm,
    klass: Term,
    schema: Schema,
    policy: ReformulationPolicy,
    encoding=None,
) -> List[Tuple[TriplePattern, Tuple[Variable, ...]]]:
    """Every *proper* (non-identity) way ``subject rdf:type klass`` can
    be entailed, as (replacement atom, non-literal guard) pairs.

    * type propagation:  ``(s, τ, c')`` for each ``c' ⊏ klass``;
    * domain typing:     ``(s, p, fresh)`` for each ``p`` whose entailed
      domains include *klass*;
    * range typing:      ``(fresh, p, s)`` for ranges, symmetrically —
      guarded: the matched object must not be a literal (literals are
      never typed), so a variable subject carries the guard and a
      literal-constant subject kills the alternative outright;
    * τ-subproperties:   ``(s, q, c)`` for each ``q ⊑ rdf:type`` and
      each ``c ∈ {klass} ∪ subclasses(klass)``.

    With a :class:`~repro.encoding.HierarchyEncoding` that covers
    *klass*, the subclass enumeration collapses: the ids of
    ``{klass} ∪ subclasses(klass)`` form one contiguous interval, so a
    single ``(s, τ, [lo, hi))`` atom (and one per τ-subproperty)
    replaces the per-subclass branches.  Only valid when the policy
    includes subclass reasoning — the interval *is* the subtree.
    """
    from ..rdf.terms import Literal

    alternatives: List[Tuple[TriplePattern, Tuple[Variable, ...]]] = []
    subclasses = (
        sorted(schema.subclasses(klass), key=lambda t: t.sort_key())
        if policy.subclass
        else []
    )
    interval = (
        encoding.type_interval(klass)
        if encoding is not None and policy.subclass
        else None
    )
    if interval is not None:
        # The caller's identity alternative already matches *klass*
        # itself, so the emitted interval covers the strict subtree
        # only — same shape as the classic enumeration below.
        strict = interval.strict()
        if strict is not None:
            alternatives.append(
                (TriplePattern(subject, RDF_TYPE, strict), ())
            )
    else:
        for sub in subclasses:
            alternatives.append((TriplePattern(subject, RDF_TYPE, sub), ()))
    if policy.domain_range:
        for prop in sorted(
            schema.properties_with_domain(klass), key=lambda t: t.sort_key()
        ):
            alternatives.append(
                (TriplePattern(subject, prop, fresh_variable("d")), ())
            )
        if not isinstance(subject, Literal):
            guard = (subject,) if isinstance(subject, Variable) else ()
            for prop in sorted(
                schema.properties_with_range(klass), key=lambda t: t.sort_key()
            ):
                alternatives.append(
                    (TriplePattern(fresh_variable("r"), prop, subject), guard)
                )
    if policy.subproperty:
        for type_sub in _type_subproperties(schema):
            if interval is not None:
                alternatives.append(
                    (TriplePattern(subject, type_sub, interval), ())
                )
            else:
                alternatives.append(
                    (TriplePattern(subject, type_sub, klass), ())
                )
                for sub in subclasses:
                    alternatives.append(
                        (TriplePattern(subject, type_sub, sub), ())
                    )
    return alternatives


def _reformulate_type_atom(
    atom: TriplePattern, schema: Schema, policy: ReformulationPolicy,
    encoding=None,
) -> List[Alternative]:
    """Non-identity alternatives for a ``(s, rdf:type, o)`` atom,
    handling both constant and variable class positions."""
    alternatives: List[Alternative] = []
    subject, _, klass = atom.as_tuple()
    if isinstance(klass, Variable):
        if not policy.open_variables:
            return alternatives
        # Bind the class variable to every schema class that has proper
        # derivations; explicit type triples are matched by the identity
        # alternative of the caller.  When subject and class position
        # share one variable (``(a, τ, a)``) the binding applies to the
        # subject too — resolve it here so the literal/guard logic sees
        # the effective subject.
        for candidate in sorted(schema.classes(), key=lambda t: t.sort_key()):
            effective_subject = candidate if subject == klass else subject
            for replacement, guard in _type_alternatives_for_class(
                effective_subject, candidate, schema, policy, encoding
            ):
                alternatives.append(
                    Alternative(replacement, {klass: candidate}, guard)
                )
    else:
        for replacement, guard in _type_alternatives_for_class(
            subject, klass, schema, policy, encoding
        ):
            alternatives.append(Alternative(replacement, {}, guard))
    return alternatives


def _reformulate_open_property_atom(
    atom: TriplePattern, schema: Schema, policy: ReformulationPolicy,
    encoding=None,
) -> List[Alternative]:
    """Non-identity alternatives for ``(s, v, o)`` with a property
    variable: data-property subsumption and ``rdf:type`` unfoldings,
    each binding ``v``.  Entailed schema constraints need no
    alternative — the stored closed schema makes the identity atom
    match them directly."""
    alternatives: List[Alternative] = []
    if not policy.open_variables:
        return alternatives
    subject, prop_var, obj = atom.as_tuple()

    if policy.subproperty:
        for prop in sorted(schema.properties(), key=lambda t: t.sort_key()):
            if prop == RDF_TYPE:
                continue
            interval = (
                encoding.property_interval(prop)
                if encoding is not None
                else None
            )
            if interval is not None:
                # One strict interval atom stands in for every
                # subproperty branch of *prop* (the identity
                # alternative already matches prop itself).
                strict = interval.strict()
                if strict is not None:
                    alternatives.append(
                        Alternative(
                            TriplePattern(subject, strict, obj),
                            {prop_var: prop},
                        )
                    )
                continue
            for sub in sorted(schema.subproperties(prop), key=lambda t: t.sort_key()):
                alternatives.append(
                    Alternative(TriplePattern(subject, sub, obj), {prop_var: prop})
                )

    type_atom = TriplePattern(subject, RDF_TYPE, obj)
    for replacement, binding, guard in _reformulate_type_atom(
        type_atom, schema, policy, encoding
    ):
        # The property variable may coincide with a variable the type
        # unfolding already bound (e.g. the atom ``(a, b, b)``); a
        # conflicting binding makes the alternative unsatisfiable.
        if prop_var in binding and binding[prop_var] != RDF_TYPE:
            continue
        merged: Substitution = dict(binding)
        merged[prop_var] = RDF_TYPE
        alternatives.append(Alternative(replacement, merged, guard))
    return alternatives


def reformulate_atom(
    atom: TriplePattern,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> List[Alternative]:
    """Every alternative for *atom* under *schema*, identity first.

    The union of the alternatives, evaluated over the explicit triples,
    equals the atom's answer over the saturated graph — the per-atom
    form of the paper's correctness contract ``q(db∞) = qref(db)``.

    ``encoding`` (a :class:`~repro.encoding.HierarchyEncoding`, opt-in)
    collapses subclass/subproperty enumerations into single interval
    atoms wherever the encoding covers the node; uncovered nodes fall
    back to the classic unions, so coverage is an optimization, never a
    correctness requirement.

    >>> from repro.rdf.namespaces import Namespace
    >>> from repro.schema import Constraint
    >>> EX = Namespace("http://example.org/")
    >>> schema = Schema([Constraint.subclass(EX.Book, EX.Publication)])
    >>> atom = TriplePattern(Variable("x"), RDF_TYPE, EX.Publication)
    >>> [str(a.atom) for a in reformulate_atom(atom, schema)]
    ['(?x rdf:type Publication)', '(?x rdf:type Book)']
    """
    alternatives: List[Alternative] = [Alternative(atom, {})]
    prop = atom.property
    if isinstance(prop, Variable):
        alternatives.extend(
            _reformulate_open_property_atom(atom, schema, policy, encoding)
        )
    elif prop == RDF_TYPE:
        alternatives.extend(
            _reformulate_type_atom(atom, schema, policy, encoding)
        )
    elif prop in SCHEMA_PROPERTIES:
        # The stored closed schema makes the identity alternative
        # complete for constraint atoms (database contract).
        pass
    elif policy.subproperty:
        interval = (
            encoding.property_interval(prop) if encoding is not None else None
        )
        if interval is not None:
            # The identity alternative above matches *prop* itself, so
            # the interval covers the strict subproperties only.
            strict = interval.strict()
            if strict is not None:
                alternatives.append(
                    Alternative(
                        TriplePattern(atom.subject, strict, atom.object), {}
                    )
                )
        else:
            for sub in sorted(
                schema.subproperties(prop), key=lambda t: t.sort_key()
            ):
                alternatives.append(
                    Alternative(
                        TriplePattern(atom.subject, sub, atom.object), {}
                    )
                )
    return alternatives


def atom_reformulation_size(
    atom: TriplePattern,
    schema: Schema,
    policy: ReformulationPolicy = COMPLETE,
    encoding=None,
) -> int:
    """``len(reformulate_atom(...))`` without building the atoms —
    used to predict UCQ sizes (e.g. Example 1's 564 per open type atom)
    before deciding whether materialization is even feasible.  With a
    hierarchy ``encoding``, counts reflect the collapsed interval atoms
    (kept in exact lockstep with :func:`reformulate_atom`)."""
    prop = atom.property
    if isinstance(prop, Variable):
        return len(reformulate_atom(atom, schema, policy, encoding))
    if prop == RDF_TYPE:
        klass = atom.object
        if isinstance(klass, Variable):
            if not policy.open_variables:
                return 1
            total = 1
            for candidate in schema.classes():
                effective_subject = (
                    candidate if atom.subject == klass else atom.subject
                )
                total += _class_alternative_count(
                    effective_subject, candidate, schema, policy, encoding
                )
            return total
        return 1 + _class_alternative_count(
            atom.subject, klass, schema, policy, encoding
        )
    if prop in SCHEMA_PROPERTIES:
        return 1
    if policy.subproperty:
        if (
            encoding is not None
            and encoding.property_interval(prop) is not None
        ):
            return 2  # identity + one interval atom
        return 1 + len(schema.subproperties(prop))
    return 1


def _class_alternative_count(
    subject: PatternTerm,
    klass: Term,
    schema: Schema,
    policy: ReformulationPolicy,
    encoding=None,
) -> int:
    from ..rdf.terms import Literal

    subclass_count = len(schema.subclasses(klass)) if policy.subclass else 0
    covered = (
        policy.subclass
        and encoding is not None
        and encoding.type_interval(klass) is not None
    )
    # One interval atom replaces the per-subclass branches (and, per
    # τ-subproperty, the 1 + subclass_count object choices).
    count = 1 if covered else subclass_count
    if policy.domain_range:
        count += len(schema.properties_with_domain(klass))
        if not isinstance(subject, Literal):
            count += len(schema.properties_with_range(klass))
    if policy.subproperty:
        per_subproperty = 1 if covered else (1 + subclass_count)
        count += len(_type_subproperties(schema)) * per_subproperty
    return count
