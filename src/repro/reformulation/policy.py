"""Reformulation policies: which RDFS features a strategy honours.

The paper contrasts *complete* reformulation (all RDFS constraints of
Figure 1) with the *incomplete* fixed strategies of off-the-shelf RDF
platforms: "Only a few RDF data management systems, such as
AllegroGraph, Stardog or Virtuoso, use reformulation, in some cases
incomplete (ignoring some RDFS constraints) [6]".  A
:class:`ReformulationPolicy` makes the honoured feature set explicit so
the same engine implements both the complete algorithm and the
simulated commercial strategies (experiment E6).
"""

from __future__ import annotations


class ReformulationPolicy:
    """Feature switches for the CQ-to-UCQ reformulation rules.

    ``subclass``      — unfold ``c' ⊑ c`` into type atoms;
    ``subproperty``   — unfold ``p' ⊑ p`` into property atoms;
    ``domain_range``  — unfold domain/range typing into type atoms;
    ``open_variables``— instantiate variables in class/property
                        position from the schema (needed for queries
                        like Example 1's ``x rdf:type u``).

    Atoms over the RDFS vocabulary itself need no switch: the database
    contract (see :func:`repro.reformulation.atoms.reformulate_atom`)
    is that the stored graph contains the *closed* schema, so the
    identity alternative already matches every entailed constraint.
    """

    __slots__ = ("subclass", "subproperty", "domain_range", "open_variables", "name")

    def __init__(
        self,
        subclass: bool = True,
        subproperty: bool = True,
        domain_range: bool = True,
        open_variables: bool = True,
        name: str = "custom",
    ):
        object.__setattr__(self, "subclass", subclass)
        object.__setattr__(self, "subproperty", subproperty)
        object.__setattr__(self, "domain_range", domain_range)
        object.__setattr__(self, "open_variables", open_variables)
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("ReformulationPolicy is immutable")

    def __repr__(self) -> str:
        return "ReformulationPolicy(%s)" % self.name


#: The complete algorithm of [9]: all RDFS constraints honoured.
COMPLETE = ReformulationPolicy(name="complete")

#: Virtuoso-style fixed strategy: hierarchies only, no domain/range
#: typing (the incompleteness [6] reports for the commercial engines).
VIRTUOSO_STYLE = ReformulationPolicy(
    domain_range=False, name="virtuoso-style"
)

#: AllegroGraph-style fixed strategy: class hierarchy reasoning only.
ALLEGROGRAPH_STYLE = ReformulationPolicy(
    subproperty=False,
    domain_range=False,
    open_variables=False,
    name="allegrograph-style",
)
