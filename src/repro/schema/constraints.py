"""RDFS constraints of the DB fragment (paper, Figure 1 bottom).

Four constraint kinds are allowed: subclass, subproperty, domain typing
and range typing.  Each is representable both as a plain RDF triple
(so constraints can live inside a graph) and as a typed Python object
(so the saturation and reformulation engines can dispatch on kind
without string comparisons).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from ..rdf.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    SCHEMA_PROPERTIES,
)
from ..rdf.terms import Term, URI
from ..rdf.triples import Triple

#: Built-in vocabulary that cannot itself be subsumed or typed.
RESERVED_VOCABULARY = frozenset(SCHEMA_PROPERTIES) | {RDF_TYPE}


def is_admissible_constraint(triple: Triple) -> bool:
    """True when a schema triple relates user-level classes/properties.

    Constraints over the RDF/RDFS built-in vocabulary itself (e.g.
    declaring a domain for ``rdf:type`` or subsuming ``rdfs:subClassOf``)
    have no agreed-upon semantics in the DB fragment and are ignored by
    every engine in this library, consistently.  The single exception is
    ``rdf:type`` in superproperty position (``p rdfs:subPropertyOf
    rdf:type``), which is well-defined: triples of ``p`` entail type
    triples.
    """
    if not triple.is_schema_triple():
        return False
    s, p, o = triple.as_tuple()
    if s in RESERVED_VOCABULARY:
        return False
    if o in SCHEMA_PROPERTIES:
        return False
    if o == RDF_TYPE and p != RDFS_SUBPROPERTYOF:
        return False
    return True


class ConstraintKind(enum.Enum):
    """The four RDFS constraint forms of Figure 1."""

    SUBCLASS = "subClassOf"
    SUBPROPERTY = "subPropertyOf"
    DOMAIN = "domain"
    RANGE = "range"

    @property
    def property_uri(self) -> URI:
        return _KIND_TO_PROPERTY[self]


_KIND_TO_PROPERTY = {
    ConstraintKind.SUBCLASS: RDFS_SUBCLASSOF,
    ConstraintKind.SUBPROPERTY: RDFS_SUBPROPERTYOF,
    ConstraintKind.DOMAIN: RDFS_DOMAIN,
    ConstraintKind.RANGE: RDFS_RANGE,
}

_PROPERTY_TO_KIND = {uri: kind for kind, uri in _KIND_TO_PROPERTY.items()}


class Constraint:
    """One RDFS constraint, e.g. ``Book rdfs:subClassOf Publication``.

    ``left`` is the constrained class/property (the triple subject),
    ``right`` the constraining one (the triple object).  Under the
    open-world interpretation of Figure 1 the constraint reads as an
    inclusion: ``left ⊆ right`` for subclass/subproperty, and
    ``Π_domain(left) ⊆ right`` / ``Π_range(left) ⊆ right`` for
    domain/range.
    """

    __slots__ = ("kind", "left", "right")

    def __init__(self, kind: ConstraintKind, left: Term, right: Term):
        if not isinstance(kind, ConstraintKind):
            raise ValueError("kind must be a ConstraintKind, got %r" % (kind,))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError("Constraint is immutable")

    @classmethod
    def subclass(cls, sub: Term, sup: Term) -> "Constraint":
        return cls(ConstraintKind.SUBCLASS, sub, sup)

    @classmethod
    def subproperty(cls, sub: Term, sup: Term) -> "Constraint":
        return cls(ConstraintKind.SUBPROPERTY, sub, sup)

    @classmethod
    def domain(cls, prop: Term, klass: Term) -> "Constraint":
        return cls(ConstraintKind.DOMAIN, prop, klass)

    @classmethod
    def range(cls, prop: Term, klass: Term) -> "Constraint":
        return cls(ConstraintKind.RANGE, prop, klass)

    @classmethod
    def from_triple(cls, triple: Triple) -> "Constraint":
        """Interpret an RDFS triple as a constraint.

        Raises ``ValueError`` when the triple's property is not one of
        the four constraint properties.
        """
        kind = _PROPERTY_TO_KIND.get(triple.property)
        if kind is None:
            raise ValueError("not an RDFS constraint triple: %r" % (triple,))
        return cls(kind, triple.subject, triple.object)

    def to_triple(self) -> Triple:
        return Triple(self.left, self.kind.property_uri, self.right)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constraint)
            and other.kind == self.kind
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.left, self.right))

    def __repr__(self) -> str:
        return "Constraint(%s, %r, %r)" % (self.kind.name, self.left, self.right)


def constraints_from_triples(triples: Iterable[Triple]) -> Iterator[Constraint]:
    """Yield the admissible constraints among *triples*.

    Data triples and inadmissible (meta-level) constraints are skipped,
    matching the entailment engines' treatment of them.
    """
    for triple in triples:
        if triple.property in _PROPERTY_TO_KIND and is_admissible_constraint(triple):
            yield Constraint.from_triple(triple)
