"""RDFS schema constraints and their closure (S2)."""

from .constraints import (
    Constraint,
    ConstraintKind,
    RESERVED_VOCABULARY,
    constraints_from_triples,
    is_admissible_constraint,
)
from .schema import Schema

__all__ = [
    "Constraint",
    "ConstraintKind",
    "RESERVED_VOCABULARY",
    "Schema",
    "constraints_from_triples",
    "is_admissible_constraint",
]
