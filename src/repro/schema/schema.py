"""The closed RDFS schema: constraints plus their entailed closure.

Both saturation and reformulation consult the *closure* of the schema
component of an RDF graph: the transitive closure of the subclass and
subproperty hierarchies, plus domain/range constraints propagated down
subproperty edges and widened up subclass edges.  Schemas are small
(tens to hundreds of constraints even for LUBM-class ontologies), so
the closure is recomputed from the direct constraints whenever it is
stale; this keeps the update path — exercised by the demo's
"modify the constraints and re-run" step — trivially correct.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Term
from ..rdf.triples import Triple
from .constraints import Constraint, ConstraintKind, constraints_from_triples


def _transitive_closure(edges: Dict[Term, Set[Term]]) -> Dict[Term, Set[Term]]:
    """Return the strict transitive closure of a successor map.

    Uses iterative depth-first traversal per node with memoization on
    completed nodes; cycles are supported (every node in a cycle
    reaches all others, including possibly itself).
    """
    closure: Dict[Term, Set[Term]] = {}
    for start in edges:
        if start in closure:
            continue
        # Iterative DFS computing reachability for `start` and, as a side
        # effect, for every node completed during the walk.
        stack: List[Tuple[Term, Iterator[Term]]] = [(start, iter(edges.get(start, ())))]
        on_stack: Set[Term] = {start}
        order: List[Term] = [start]
        reach: Dict[Term, Set[Term]] = {start: set(edges.get(start, ()))}
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ in closure:
                    reach[node].update(closure[succ])
                    reach[node].add(succ)
                elif succ in on_stack:
                    # Cycle: defer, handled by the fixpoint pass below.
                    reach[node].add(succ)
                else:
                    reach[succ] = set(edges.get(succ, ()))
                    stack.append((succ, iter(edges.get(succ, ()))))
                    on_stack.add(succ)
                    order.append(succ)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
        # Fixpoint pass over the visited component to absorb cycles.
        changed = True
        while changed:
            changed = False
            for node in order:
                expanded: Set[Term] = set(reach[node])
                for succ in list(reach[node]):
                    expanded.update(reach.get(succ, closure.get(succ, set())))
                if len(expanded) > len(reach[node]):
                    reach[node] = expanded
                    changed = True
        for node in order:
            closure[node] = reach[node]
    return closure


class Schema:
    """An RDFS schema with lazily maintained closure.

    The accessors all operate on the *entailed* constraint set: e.g.
    :meth:`superclasses` follows subclass chains transitively, and
    :meth:`domains` includes domains inherited from superproperties and
    widened through subclasses, mirroring the schema-level immediate
    entailment rules of the DB fragment.

    >>> from repro.rdf.namespaces import Namespace
    >>> EX = Namespace("http://example.org/")
    >>> s = Schema([Constraint.subclass(EX.Book, EX.Publication),
    ...             Constraint.subclass(EX.Publication, EX.Work)])
    >>> sorted(c.local_name() for c in s.superclasses(EX.Book))
    ['Publication', 'Work']
    """

    def __init__(self, constraints: Optional[Iterable[Constraint]] = None):
        self._constraints: Set[Constraint] = set()
        self._dirty = True
        self._fingerprint: Optional[str] = None
        # Closure structures, (re)built by _ensure_closed().
        self._sub_class: Dict[Term, Set[Term]] = {}
        self._super_class: Dict[Term, Set[Term]] = {}
        self._sub_property: Dict[Term, Set[Term]] = {}
        self._super_property: Dict[Term, Set[Term]] = {}
        self._domains: Dict[Term, Set[Term]] = {}
        self._ranges: Dict[Term, Set[Term]] = {}
        self._classes: Set[Term] = set()
        self._properties: Set[Term] = set()
        if constraints is not None:
            for constraint in constraints:
                self.add(constraint)

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_graph(cls, graph: Graph) -> "Schema":
        """Extract the schema component of *graph*."""
        return cls(constraints_from_triples(graph.schema_triples()))

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "Schema":
        return cls(constraints_from_triples(triples))

    def add(self, constraint: Constraint) -> bool:
        """Add a direct constraint; return True when new."""
        if not isinstance(constraint, Constraint):
            raise TypeError("Schema.add expects a Constraint")
        if constraint in self._constraints:
            return False
        self._constraints.add(constraint)
        self._dirty = True
        self._fingerprint = None
        return True

    def remove(self, constraint: Constraint) -> bool:
        """Remove a direct constraint; return True when it was present."""
        if constraint not in self._constraints:
            return False
        self._constraints.discard(constraint)
        self._dirty = True
        self._fingerprint = None
        return True

    def copy(self) -> "Schema":
        return Schema(self._constraints)

    def fingerprint(self) -> str:
        """A digest identifying the direct constraint set.

        Deterministic across processes (content-derived, not id-based)
        and invalidated by :meth:`add`/:meth:`remove`; the cache
        subsystem keys reformulations on it, so any schema change —
        and only a schema change — retires them.
        """
        if self._fingerprint is None:
            import hashlib

            encoded = sorted(
                (
                    constraint.kind.value,
                    constraint.left.sort_key(),
                    constraint.right.sort_key(),
                )
                for constraint in self._constraints
            )
            digest = hashlib.sha1(repr(encoded).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Closure maintenance

    def _ensure_closed(self) -> None:
        if not self._dirty:
            return
        sub_class_direct: Dict[Term, Set[Term]] = defaultdict(set)
        sub_property_direct: Dict[Term, Set[Term]] = defaultdict(set)
        domain_direct: Dict[Term, Set[Term]] = defaultdict(set)
        range_direct: Dict[Term, Set[Term]] = defaultdict(set)
        classes: Set[Term] = set()
        properties: Set[Term] = set()
        for constraint in self._constraints:
            if constraint.kind is ConstraintKind.SUBCLASS:
                sub_class_direct[constraint.left].add(constraint.right)
                classes.add(constraint.left)
                classes.add(constraint.right)
            elif constraint.kind is ConstraintKind.SUBPROPERTY:
                sub_property_direct[constraint.left].add(constraint.right)
                properties.add(constraint.left)
                properties.add(constraint.right)
            elif constraint.kind is ConstraintKind.DOMAIN:
                domain_direct[constraint.left].add(constraint.right)
                properties.add(constraint.left)
                classes.add(constraint.right)
            else:
                range_direct[constraint.left].add(constraint.right)
                properties.add(constraint.left)
                classes.add(constraint.right)

        super_class = _transitive_closure(dict(sub_class_direct))
        super_property = _transitive_closure(dict(sub_property_direct))

        sub_class: Dict[Term, Set[Term]] = defaultdict(set)
        for sub, supers in super_class.items():
            for sup in supers:
                sub_class[sup].add(sub)
        sub_property: Dict[Term, Set[Term]] = defaultdict(set)
        for sub, supers in super_property.items():
            for sup in supers:
                sub_property[sup].add(sub)

        # Entailed domains/ranges: a property inherits the domain/range
        # constraints of all its (transitive) superproperties, and each
        # domain/range class is widened to all its superclasses.
        domains: Dict[Term, Set[Term]] = defaultdict(set)
        ranges: Dict[Term, Set[Term]] = defaultdict(set)
        for prop in properties:
            ancestors = {prop} | super_property.get(prop, set())
            for ancestor in ancestors:
                for klass in domain_direct.get(ancestor, ()):
                    domains[prop].add(klass)
                    domains[prop].update(super_class.get(klass, ()))
                for klass in range_direct.get(ancestor, ()):
                    ranges[prop].add(klass)
                    ranges[prop].update(super_class.get(klass, ()))

        self._sub_class = dict(sub_class)
        self._super_class = super_class
        self._sub_property = dict(sub_property)
        self._super_property = super_property
        self._domains = dict(domains)
        self._ranges = dict(ranges)
        self._classes = classes
        self._properties = properties
        self._dirty = False

    # ------------------------------------------------------------------
    # Entailed-constraint accessors (all strict unless noted)

    def superclasses(self, klass: Term) -> Set[Term]:
        """All entailed strict superclasses of *klass*."""
        self._ensure_closed()
        return set(self._super_class.get(klass, ()))

    def subclasses(self, klass: Term) -> Set[Term]:
        """All entailed strict subclasses of *klass*."""
        self._ensure_closed()
        return set(self._sub_class.get(klass, ()))

    def superproperties(self, prop: Term) -> Set[Term]:
        self._ensure_closed()
        return set(self._super_property.get(prop, ()))

    def subproperties(self, prop: Term) -> Set[Term]:
        self._ensure_closed()
        return set(self._sub_property.get(prop, ()))

    def domains(self, prop: Term) -> Set[Term]:
        """All entailed domain classes of *prop* (inherited and widened)."""
        self._ensure_closed()
        return set(self._domains.get(prop, ()))

    def ranges(self, prop: Term) -> Set[Term]:
        """All entailed range classes of *prop* (inherited and widened)."""
        self._ensure_closed()
        return set(self._ranges.get(prop, ()))

    def properties_with_domain(self, klass: Term) -> Set[Term]:
        """Properties ``p`` whose entailed domains include *klass*.

        These are exactly the properties for which a triple ``s p o``
        entails ``s rdf:type klass`` — the reformulation rule for type
        atoms uses this set.
        """
        self._ensure_closed()
        return {p for p, classes in self._domains.items() if klass in classes}

    def properties_with_range(self, klass: Term) -> Set[Term]:
        """Properties ``p`` whose entailed ranges include *klass*."""
        self._ensure_closed()
        return {p for p, classes in self._ranges.items() if klass in classes}

    def classes(self) -> FrozenSet[Term]:
        """Every class mentioned by some constraint."""
        self._ensure_closed()
        return frozenset(self._classes)

    def properties(self) -> FrozenSet[Term]:
        """Every (data) property mentioned by some constraint."""
        self._ensure_closed()
        return frozenset(self._properties)

    def is_subclass(self, sub: Term, sup: Term) -> bool:
        """True when ``sub ⊑ sup`` is entailed (reflexive)."""
        return sub == sup or sup in self.superclasses(sub)

    def is_subproperty(self, sub: Term, sup: Term) -> bool:
        """True when ``sub ⊑ sup`` is entailed (reflexive)."""
        return sub == sup or sup in self.superproperties(sub)

    # ------------------------------------------------------------------
    # Constraint-set views

    def direct_constraints(self) -> Set[Constraint]:
        return set(self._constraints)

    def entailed_constraints(self) -> Set[Constraint]:
        """The closure: every constraint entailed by the direct ones."""
        self._ensure_closed()
        entailed: Set[Constraint] = set()
        for sub, supers in self._super_class.items():
            for sup in supers:
                entailed.add(Constraint.subclass(sub, sup))
        for sub, supers in self._super_property.items():
            for sup in supers:
                entailed.add(Constraint.subproperty(sub, sup))
        for prop, classes in self._domains.items():
            for klass in classes:
                entailed.add(Constraint.domain(prop, klass))
        for prop, classes in self._ranges.items():
            for klass in classes:
                entailed.add(Constraint.range(prop, klass))
        return entailed

    def entailed_triples(self) -> Iterator[Triple]:
        """Yield the closure as RDF triples (used by Sat and by schema
        queries, which must see entailed constraints)."""
        for constraint in self.entailed_constraints():
            yield constraint.to_triple()

    def to_triples(self) -> Iterator[Triple]:
        """Yield the direct constraints as RDF triples."""
        for constraint in self._constraints:
            yield constraint.to_triple()

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, constraint: Constraint) -> bool:
        return constraint in self._constraints

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and other._constraints == self._constraints

    def __repr__(self) -> str:
        return "Schema(<%d constraints>)" % len(self._constraints)
