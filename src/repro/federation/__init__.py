"""Federated query answering over independent RDF endpoints (the
distributed scenario of the paper's introduction)."""

from .client import FederatedAnswer, FederatedAnswerer
from .endpoint import Endpoint, ExportForbidden, TruncatedResult

__all__ = [
    "Endpoint",
    "ExportForbidden",
    "FederatedAnswer",
    "FederatedAnswerer",
    "TruncatedResult",
]
