"""Federated query answering over independent RDF endpoints (the
distributed scenario of the paper's introduction)."""

from .endpoint import Endpoint, ExportForbidden, TruncatedResult, truncate_rows
from .client import FederatedAnswer, FederatedAnswerer

__all__ = [
    "Endpoint",
    "ExportForbidden",
    "FederatedAnswer",
    "FederatedAnswerer",
    "TruncatedResult",
    "truncate_rows",
]
