"""RDF endpoints: independent sources with restricted interfaces.

Section 1 of the paper: "Semantic Web data is often split across
independent [sources], typically called RDF endpoints … Data in each
such independent source may or may not be saturated; further, implicit
facts may be due to the presence of one fact in one endpoint, and a
constraint in another.  Computing the complete (distributed) set of
consequences in this setting is unfeasible, especially considering
that such sources often return only restricted answers (e.g., the
first 50) to a query, to avoid overloading their servers."

:class:`Endpoint` models exactly that interface: it evaluates BGP
queries over its *explicit* triples only (no reasoning), optionally
truncates results to ``result_limit`` rows, refuses bulk export, and
counts the requests made of it — the quantities experiment E11 uses to
show why Sat cannot work here while Ref can.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..query.algebra import ConjunctiveQuery, UnionQuery
from ..rdf.graph import Graph
from ..rdf.terms import Term
from ..storage.backends import BackendProfile, HASH_BACKEND
from ..storage.executor import Executor
from ..storage.store import TripleStore

Row = Tuple[Term, ...]


def truncate_rows(rows, limit: Optional[int]) -> Tuple[FrozenSet[Row], bool]:
    """The one truncation code path: keep the deterministic sorted
    prefix of *rows* under *limit* (reproducible experiments; real
    endpoints return an arbitrary page).

    Shared by :meth:`Endpoint.evaluate` and the chaos harness's flaky
    truncation (:class:`~repro.resilience.faults.ChaosEndpoint`), so
    injected truncation cannot diverge from genuine truncation
    semantics.

    >>> rows, truncated = truncate_rows({(3,), (1,), (2,)}, 2)
    >>> (sorted(rows), truncated)
    ([(1,), (2,)], True)
    >>> truncate_rows({(1,)}, None)[1]
    False
    """
    if limit is not None and len(rows) > limit:
        return frozenset(sorted(rows)[:limit]), True
    return frozenset(rows), False


class ExportForbidden(RuntimeError):
    """The endpoint refuses to hand over its full contents.

    Public endpoints do not allow dumps; this is what makes global
    saturation infeasible in the federated setting.
    """


class TruncatedResult:
    """An endpoint response: rows plus a truncation flag.

    When ``truncated`` is set, the endpoint had more matches than its
    result limit allows returning — any pipeline built on this answer
    is potentially incomplete, and honest clients must surface that.
    """

    def __init__(self, rows: FrozenSet[Row], truncated: bool):
        self.rows = rows
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Endpoint:
    """One independent RDF source.

    >>> from repro.rdf import Namespace, RDF_TYPE, Triple, Graph
    >>> EX = Namespace("http://e/")
    >>> endpoint = Endpoint("src", Graph([Triple(EX.a, RDF_TYPE, EX.C)]))
    >>> endpoint.name
    'src'
    """

    def __init__(
        self,
        name: str,
        graph: Graph,
        result_limit: Optional[int] = None,
        backend: BackendProfile = HASH_BACKEND,
    ):
        self.name = name
        self.result_limit = result_limit
        self._store = TripleStore.from_graph(graph)
        self._executor = Executor(self._store, backend)
        self.requests_served = 0
        self.rows_returned = 0

    @property
    def triple_count(self) -> int:
        return self._store.triple_count

    # ------------------------------------------------------------------

    def evaluate(self, query) -> TruncatedResult:
        """Evaluate a CQ or UCQ over the explicit triples; apply the
        result limit.  This is the *only* data access the endpoint
        offers."""
        if not isinstance(query, (ConjunctiveQuery, UnionQuery)):
            raise TypeError("endpoints answer CQs and UCQs, got %r" % (query,))
        self.requests_served += 1
        answer = self._executor.run(query).answer()
        answer, truncated = truncate_rows(answer, self.result_limit)
        self.rows_returned += len(answer)
        return TruncatedResult(answer, truncated)

    def export(self) -> Graph:
        """Bulk export — always refused (see class doc)."""
        raise ExportForbidden(
            "endpoint %r does not allow dumping its %d triples"
            % (self.name, self.triple_count)
        )

    def reset_counters(self) -> None:
        self.requests_served = 0
        self.rows_returned = 0

    def __repr__(self) -> str:
        limit = self.result_limit if self.result_limit is not None else "∞"
        return "Endpoint(%r, %d triples, limit=%s)" % (
            self.name,
            self.triple_count,
            limit,
        )
