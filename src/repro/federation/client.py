"""Federated reformulation-based query answering.

The client side of the paper's distributed motivation: given a set of
:class:`~repro.federation.endpoint.Endpoint` sources whose *union* is
the logical graph, and the RDFS constraints (held by the client — in
practice fetched once from an ontology endpoint, which is feasible
because schemas are tiny), answer conjunctive queries completely
without ever saturating anything:

1. reformulate each query atom into its UCQ of alternatives (the same
   per-atom rules as everywhere else);
2. send each atomic UCQ to every endpoint (atoms are the unit of
   distribution: a join may need one triple from one source and one
   from another, so multi-atom fragments cannot be pushed down to a
   single endpoint without losing cross-endpoint matches);
3. union the per-endpoint answers and join locally on shared
   variables — exactly an SCQ evaluation whose leaves are remote.

Saturation, by contrast, would need every source's full contents
(exports are refused) or unrestricted query answers (responses are
truncated), and would have to be redone whenever any source changes —
the infeasibility the paper asserts, measured by experiment E11.

Atoms over the RDFS vocabulary are answered from the client's own
closed schema (the client holds the constraints, so it *is* the
authority on entailed constraints); atoms with a variable in property
position match the client closure plus whatever constraint triples the
endpoints expose explicitly.

**Resilience.**  Real endpoints fail: the same Section 1 that motivates
federation describes sources that truncate, refuse and disappear.  The
client therefore wraps every endpoint call in the
:mod:`repro.resilience` machinery — optional retry with backoff
(``retry_policy``), a per-request deadline (``request_deadline``), and
a per-endpoint circuit breaker (``breaker_threshold``) — and degrades
gracefully: a failed or skipped endpoint costs its *contribution*, not
the answer.  Every answer carries a
:class:`~repro.resilience.report.CompletenessReport` stating, per
endpoint, whether its sub-answers were ok, truncated, degraded (failed
past retries/deadline) or skipped (open circuit).  Degraded responses
are **never** written to the sub-answer cache: a cache must not launder
a failure into a complete answer.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cache import QueryCache, dataset_token
from ..parallel.pool import ExecutorPool, pool_for
from ..query.algebra import (
    ConjunctiveQuery,
    HeadTerm,
    TriplePattern,
    UnionQuery,
    Variable,
)
from ..engine.pipeline import join_relations  # the engine's shared join kernel
from ..rdf.terms import Term
from ..reformulation.engine import reformulate
from ..reformulation.policy import COMPLETE, ReformulationPolicy
from ..resilience.breaker import CircuitBreaker
from ..resilience.budget import ExecutionBudget
from ..resilience.clock import Clock, Deadline, SYSTEM_CLOCK
from ..resilience.errors import DeadlineExceeded, EndpointFailure
from ..resilience.report import (
    CompletenessReport,
    DEGRADED,
    EndpointReport,
    SKIPPED_OPEN_CIRCUIT,
    TRUNCATED,
)
from ..resilience.retry import RetryPolicy
from ..schema.schema import Schema
from .endpoint import Endpoint

Row = Tuple[Term, ...]


class FederatedAnswer:
    """A federated result: rows plus completeness accounting."""

    def __init__(
        self,
        rows: FrozenSet[Row],
        truncated: bool,
        requests: int,
        rows_transferred: int,
        report: Optional[CompletenessReport] = None,
    ):
        self.rows = rows
        #: True when any endpoint truncated a sub-answer — the client
        #: cannot certify completeness then (it reports it, honestly).
        self.truncated = truncated
        self.requests = requests
        self.rows_transferred = rows_transferred
        #: Per-endpoint status/retry/elapsed accounting (always present
        #: on answers produced by :meth:`FederatedAnswerer.answer`).
        self.report = report

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def complete(self) -> bool:
        """Certified complete: nothing truncated, degraded or skipped."""
        if self.truncated:
            return False
        return self.report is None or self.report.complete

    def __repr__(self) -> str:
        if self.complete:
            flag = ""
        elif self.report is not None and not self.report.complete:
            flag = " (PARTIAL)"
        else:
            flag = " (TRUNCATED)"
        return "FederatedAnswer(%d rows, %d requests%s)" % (
            self.cardinality,
            self.requests,
            flag,
        )


class FederatedAnswerer:
    """Answers CQs over the union of several endpoints via Ref."""

    def __init__(
        self,
        endpoints: Sequence[Endpoint],
        schema: Schema,
        policy: ReformulationPolicy = COMPLETE,
        cache: Optional[QueryCache] = None,
        retry_policy: Optional[RetryPolicy] = None,
        request_deadline: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 30.0,
        clock: Optional[Clock] = None,
        parallelism: int = 1,
    ):
        """``cache`` (opt-in) stores each endpoint's per-atom sub-answer
        in the cache's answer tier (and the atomic UCQs in its
        reformulation tier), so repeated queries — and queries sharing
        atoms — skip network round-trips entirely.  The federation has
        no push notifications for remote updates; call
        :meth:`invalidate` when a source is known to have changed.

        Resilience knobs (all opt-in; defaults preserve the fail-fast
        behaviour of a reliable lab federation):

        * ``retry_policy`` — retries transient endpoint errors with the
          policy's backoff; ``None`` means one attempt per request;
        * ``request_deadline`` — seconds allowed per (atom, endpoint)
          fetch *including* retries; overruns degrade that endpoint;
        * ``breaker_threshold`` / ``breaker_cooldown`` — per-endpoint
          circuit breakers (``None`` disables them);
        * ``clock`` — the time source backoffs, deadlines and cooldowns
          run on; inject a :class:`~repro.resilience.clock.FakeClock`
          for instant, deterministic tests.

        ``parallelism`` fans each atom's per-endpoint fetches out to the
        shared worker pool (endpoint latency overlaps instead of
        summing); ``1`` keeps the serial loop.  Accounting, cache writes
        and row merging stay serial in endpoint order, so the answer,
        its report and the cache contents are identical either way.
        """
        if not endpoints:
            raise ValueError("a federation needs at least one endpoint")
        if request_deadline is not None and request_deadline <= 0:
            raise ValueError(
                "request_deadline must be positive, got %r" % (request_deadline,)
            )
        self.endpoints = list(endpoints)
        self.schema = schema
        self.policy = policy
        self.cache = cache
        self._token: Optional[int] = dataset_token() if cache is not None else None
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.retry_policy = retry_policy
        self.request_deadline = request_deadline
        self.pool: Optional[ExecutorPool] = pool_for(parallelism)
        #: One breaker per endpoint position, or None when disabled.
        self.breakers: Optional[List[CircuitBreaker]] = None
        if breaker_threshold is not None:
            self.breakers = [
                CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    cooldown_seconds=breaker_cooldown,
                    clock=self.clock,
                )
                for _ in self.endpoints
            ]
        # Report labels: endpoint names, uniquified by position so two
        # same-named sources cannot merge their accounting.
        self._labels: List[str] = []
        seen: Dict[str, int] = {}
        for endpoint in self.endpoints:
            count = seen.get(endpoint.name, 0)
            seen[endpoint.name] = count + 1
            self._labels.append(
                endpoint.name if count == 0 else "%s#%d" % (endpoint.name, count)
            )

    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Declare the endpoints' contents changed: cached sub-answers
        are retired (the reformulations stay — they are schema-only)."""
        if self.cache is not None:
            self.cache.note_data_change()

    def _atom_union(self, atom: TriplePattern, head: Sequence[HeadTerm]) -> UnionQuery:
        """The UCQ of alternatives for one atom, projected on *head*."""
        single = ConjunctiveQuery(head, [atom])
        if self.cache is None:
            return reformulate(single, self.schema, self.policy)
        key = self.cache.reformulation_key(
            "atom-ucq", single, self.schema, self.policy
        )
        union, _ = self.cache.get_or_compute(
            "reformulation",
            key,
            lambda: reformulate(single, self.schema, self.policy),
        )
        return union

    def _schema_atom_rows(
        self, atom: TriplePattern, head: Tuple[HeadTerm, ...]
    ) -> Set[Row]:
        """Answer a constraint atom from the client's closed schema."""
        rows: Set[Row] = set()
        for triple in self.schema.entailed_triples():
            binding = atom.matches(triple)
            if binding is None:
                continue
            rows.add(
                tuple(
                    binding[item] if isinstance(item, Variable) else item
                    for item in head
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Guarded endpoint calls

    def _call_endpoint(
        self, index: int, endpoint: Endpoint, union: UnionQuery,
        entry: EndpointReport,
    ):
        """One guarded fetch: breaker gate, retries with backoff, and a
        per-request deadline.  Returns the
        :class:`~repro.federation.endpoint.TruncatedResult`, or ``None``
        when the endpoint is skipped or exhausted (the caller degrades
        gracefully; nothing may be cached then)."""
        breaker = self.breakers[index] if self.breakers is not None else None
        if breaker is not None and not breaker.allow():
            entry.note_status(SKIPPED_OPEN_CIRCUIT)
            return None
        deadline = (
            Deadline(self.request_deadline, self.clock)
            if self.request_deadline is not None
            else None
        )
        started = self.clock.monotonic()
        requests_before = entry.requests

        def attempt():
            entry.requests += 1
            if deadline is not None:
                deadline.check("request to endpoint %r" % (endpoint.name,))
            try:
                result = endpoint.evaluate(union)
            except EndpointFailure:
                if breaker is not None:
                    breaker.record_failure()
                raise
            if deadline is not None and deadline.expired():
                # The answer arrived after the deadline: an honest
                # client has already moved on, and a chronically slow
                # endpoint counts against its breaker.
                if breaker is not None:
                    breaker.record_failure()
                raise DeadlineExceeded(
                    "endpoint %r answered after the %.3fs deadline"
                    % (endpoint.name, self.request_deadline),
                    elapsed_seconds=deadline.elapsed(),
                )
            if breaker is not None:
                breaker.record_success()
            return result

        try:
            if self.retry_policy is None:
                result = attempt()
            else:
                result, _ = self.retry_policy.run(
                    attempt, clock=self.clock, deadline=deadline
                )
        except (EndpointFailure, DeadlineExceeded) as exc:
            entry.note_error(exc)
            entry.note_status(DEGRADED)
            result = None
        entry.retries += max(0, entry.requests - requests_before - 1)
        entry.elapsed_seconds += self.clock.monotonic() - started
        return result

    def _fetch_atom(
        self,
        atom: TriplePattern,
        head: Tuple[HeadTerm, ...],
        entries: Sequence[EndpointReport],
    ) -> Tuple[Set[Row], bool, int, int]:
        """Evaluate one atom's UCQ on every endpoint; union the rows.
        Constraint atoms short-circuit to the client's schema.

        Three phases so the per-endpoint requests may overlap: a serial
        cache-lookup pass (cache access stays single-threaded) collects
        the endpoints that actually need a request; the guarded calls
        then run on the worker pool (each call touches only its own
        report entry and breaker); finally rows, truncation flags and
        cache stores are merged serially in endpoint order — identical
        accounting to the serial loop."""
        from ..rdf.namespaces import SCHEMA_PROPERTIES

        if atom.property in SCHEMA_PROPERTIES:
            return self._schema_atom_rows(atom, head), False, 0, 0
        union: Optional[UnionQuery] = None
        single = ConjunctiveQuery(head, [atom])
        rows: Set[Row] = set()
        truncated = False
        requests = 0
        transferred = 0
        # -- phase 1: serial cache lookups; collect the misses ---------
        pending: List[Tuple[int, Endpoint, EndpointReport, Optional[object], int]] = []
        for index, endpoint in enumerate(self.endpoints):
            entry = entries[index]
            key = None
            if self.cache is not None:
                key = self.cache.endpoint_key(
                    self._token,
                    "%d:%s" % (index, endpoint.name),
                    single,
                    self.schema,
                    self.policy,
                )
                cached = self.cache.lookup_answer(key)
                if cached is not None:
                    cached_rows, cached_truncated = cached
                    rows.update(cached_rows)
                    truncated = truncated or cached_truncated
                    entry.cache_hits += 1
                    entry.rows += len(cached_rows)
                    if cached_truncated:
                        entry.note_status(TRUNCATED)
                    continue  # no request made: the hit is the point
            if union is None:
                union = self._atom_union(atom, head)
            pending.append((index, endpoint, entry, key, entry.requests))
        # -- phase 2: the guarded endpoint calls, fanned out -----------
        if self.pool is not None and self.pool.usable() and len(pending) > 1:
            results = self.pool.map(
                lambda item: self._call_endpoint(item[0], item[1], union, item[2]),
                pending,
            )
        else:
            results = [
                self._call_endpoint(index, endpoint, union, entry)
                for index, endpoint, entry, _key, _before in pending
            ]
        # -- phase 3: serial merge in endpoint order -------------------
        for (index, endpoint, entry, key, requests_before), result in zip(
            pending, results
        ):
            requests += entry.requests - requests_before
            if result is None:
                # Degraded or skipped: answer from the other sources;
                # crucially, nothing is cached for this endpoint — a
                # failure must never be served later as a sub-answer.
                continue
            rows.update(result.rows)
            truncated = truncated or result.truncated
            transferred += len(result)
            entry.rows += len(result.rows)
            if result.truncated:
                entry.note_status(TRUNCATED)
            if key is not None:
                self.cache.store_answer(
                    key, (frozenset(result.rows), result.truncated)
                )
        return rows, truncated, requests, transferred

    def answer(
        self,
        query: ConjunctiveQuery,
        budget: Optional[ExecutionBudget] = None,
    ) -> FederatedAnswer:
        """The complete answer of *query* over the union graph (unless
        an endpoint truncates, degrades or is skipped — the answer's
        :class:`~repro.resilience.report.CompletenessReport` says which,
        and the rows are then a sound subset of the complete answer).

        ``budget`` (opt-in) bounds the *local* join evaluation: a
        cross-endpoint blowup raises
        :class:`~repro.resilience.errors.BudgetExceeded` instead of
        consuming the client."""
        started = self.clock.monotonic()
        report = CompletenessReport(self._labels)
        entries = [report[label] for label in self._labels]
        requests = 0
        transferred = 0
        truncated = False

        schema_columns: Optional[Tuple[HeadTerm, ...]] = None
        rows: Set[Row] = set()
        head_variables = {
            item for item in query.head if isinstance(item, Variable)
        }
        for index, atom in enumerate(query.atoms):
            # Expose every variable of the atom that joins elsewhere or
            # is distinguished (same rule as cover fragment heads).
            needed: Set[Variable] = set(head_variables)
            for other_index, other in enumerate(query.atoms):
                if other_index != index:
                    needed.update(other.variables())
            exposed = tuple(
                variable
                for variable in sorted(atom.variables(), key=lambda v: v.name)
                if variable in needed or variable in head_variables
            ) or tuple(sorted(atom.variables(), key=lambda v: v.name))[:1]
            if not atom.variables():
                exposed = ()
            atom_rows, atom_truncated, atom_requests, atom_transferred = (
                self._fetch_atom(atom, exposed, entries)
            )
            requests += atom_requests
            transferred += atom_transferred
            truncated = truncated or atom_truncated
            if budget is not None:
                budget.charge_rows(len(atom_rows), operator="atom %d union" % index)
            if schema_columns is None:
                schema_columns, rows = exposed, atom_rows
            else:
                schema_columns, rows = join_relations(
                    schema_columns, rows, exposed, atom_rows, budget=budget
                )
            if not rows and not atom.is_ground():
                break

        positions: Dict[Variable, int] = {}
        for column_index, item in enumerate(schema_columns or ()):
            if isinstance(item, Variable) and item not in positions:
                positions[item] = column_index
        projected: Set[Row] = set()
        for row in rows:
            output: List[Term] = []
            for item in query.head:
                if isinstance(item, Variable):
                    output.append(row[positions[item]])
                else:
                    output.append(item)
            projected.add(tuple(output))
        report.elapsed_seconds = self.clock.monotonic() - started
        return FederatedAnswer(
            frozenset(projected), truncated, requests, transferred, report
        )

    # ------------------------------------------------------------------

    def total_triples(self) -> int:
        return sum(endpoint.triple_count for endpoint in self.endpoints)

    def reset_counters(self) -> None:
        for endpoint in self.endpoints:
            endpoint.reset_counters()
