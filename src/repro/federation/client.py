"""Federated reformulation-based query answering.

The client side of the paper's distributed motivation: given a set of
:class:`~repro.federation.endpoint.Endpoint` sources whose *union* is
the logical graph, and the RDFS constraints (held by the client — in
practice fetched once from an ontology endpoint, which is feasible
because schemas are tiny), answer conjunctive queries completely
without ever saturating anything:

1. reformulate each query atom into its UCQ of alternatives (the same
   per-atom rules as everywhere else);
2. send each atomic UCQ to every endpoint (atoms are the unit of
   distribution: a join may need one triple from one source and one
   from another, so multi-atom fragments cannot be pushed down to a
   single endpoint without losing cross-endpoint matches);
3. union the per-endpoint answers and join locally on shared
   variables — exactly an SCQ evaluation whose leaves are remote.

Saturation, by contrast, would need every source's full contents
(exports are refused) or unrestricted query answers (responses are
truncated), and would have to be redone whenever any source changes —
the infeasibility the paper asserts, measured by experiment E11.

Atoms over the RDFS vocabulary are answered from the client's own
closed schema (the client holds the constraints, so it *is* the
authority on entailed constraints); atoms with a variable in property
position match the client closure plus whatever constraint triples the
endpoints expose explicitly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cache import QueryCache, dataset_token
from ..query.algebra import (
    ConjunctiveQuery,
    HeadTerm,
    TriplePattern,
    UnionQuery,
    Variable,
)
from ..query.evaluation import _join_relations  # shared join kernel
from ..rdf.terms import Literal, Term
from ..reformulation.engine import reformulate
from ..reformulation.policy import COMPLETE, ReformulationPolicy
from ..schema.schema import Schema
from .endpoint import Endpoint

Row = Tuple[Term, ...]


class FederatedAnswer:
    """A federated result: rows plus completeness accounting."""

    def __init__(
        self,
        rows: FrozenSet[Row],
        truncated: bool,
        requests: int,
        rows_transferred: int,
    ):
        self.rows = rows
        #: True when any endpoint truncated a sub-answer — the client
        #: cannot certify completeness then (it reports it, honestly).
        self.truncated = truncated
        self.requests = requests
        self.rows_transferred = rows_transferred

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        flag = " (TRUNCATED)" if self.truncated else ""
        return "FederatedAnswer(%d rows, %d requests%s)" % (
            self.cardinality,
            self.requests,
            flag,
        )


class FederatedAnswerer:
    """Answers CQs over the union of several endpoints via Ref."""

    def __init__(
        self,
        endpoints: Sequence[Endpoint],
        schema: Schema,
        policy: ReformulationPolicy = COMPLETE,
        cache: Optional[QueryCache] = None,
    ):
        """``cache`` (opt-in) stores each endpoint's per-atom sub-answer
        in the cache's answer tier (and the atomic UCQs in its
        reformulation tier), so repeated queries — and queries sharing
        atoms — skip network round-trips entirely.  The federation has
        no push notifications for remote updates; call
        :meth:`invalidate` when a source is known to have changed."""
        if not endpoints:
            raise ValueError("a federation needs at least one endpoint")
        self.endpoints = list(endpoints)
        self.schema = schema
        self.policy = policy
        self.cache = cache
        self._token: Optional[int] = dataset_token() if cache is not None else None

    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Declare the endpoints' contents changed: cached sub-answers
        are retired (the reformulations stay — they are schema-only)."""
        if self.cache is not None:
            self.cache.note_data_change()

    def _atom_union(self, atom: TriplePattern, head: Sequence[HeadTerm]) -> UnionQuery:
        """The UCQ of alternatives for one atom, projected on *head*."""
        single = ConjunctiveQuery(head, [atom])
        if self.cache is None:
            return reformulate(single, self.schema, self.policy)
        key = self.cache.reformulation_key(
            "atom-ucq", single, self.schema, self.policy
        )
        union = self.cache.lookup_reformulation(key)
        if union is None:
            union = reformulate(single, self.schema, self.policy)
            self.cache.store_reformulation(key, union)
        return union

    def _schema_atom_rows(
        self, atom: TriplePattern, head: Tuple[HeadTerm, ...]
    ) -> Set[Row]:
        """Answer a constraint atom from the client's closed schema."""
        rows: Set[Row] = set()
        for triple in self.schema.entailed_triples():
            binding = atom.matches(triple)
            if binding is None:
                continue
            rows.add(
                tuple(
                    binding[item] if isinstance(item, Variable) else item
                    for item in head
                )
            )
        return rows

    def _fetch_atom(
        self, atom: TriplePattern, head: Tuple[HeadTerm, ...]
    ) -> Tuple[Set[Row], bool, int, int]:
        """Evaluate one atom's UCQ on every endpoint; union the rows.
        Constraint atoms short-circuit to the client's schema."""
        from ..rdf.namespaces import SCHEMA_PROPERTIES

        if atom.property in SCHEMA_PROPERTIES:
            return self._schema_atom_rows(atom, head), False, 0, 0
        union: Optional[UnionQuery] = None
        single = ConjunctiveQuery(head, [atom])
        rows: Set[Row] = set()
        truncated = False
        requests = 0
        transferred = 0
        for index, endpoint in enumerate(self.endpoints):
            key = None
            if self.cache is not None:
                key = self.cache.endpoint_key(
                    self._token,
                    "%d:%s" % (index, endpoint.name),
                    single,
                    self.schema,
                    self.policy,
                )
                cached = self.cache.lookup_answer(key)
                if cached is not None:
                    cached_rows, cached_truncated = cached
                    rows.update(cached_rows)
                    truncated = truncated or cached_truncated
                    continue  # no request made: the hit is the point
            if union is None:
                union = self._atom_union(atom, head)
            result = endpoint.evaluate(union)
            rows.update(result.rows)
            truncated = truncated or result.truncated
            requests += 1
            transferred += len(result)
            if key is not None:
                self.cache.store_answer(
                    key, (frozenset(result.rows), result.truncated)
                )
        return rows, truncated, requests, transferred

    def answer(self, query: ConjunctiveQuery) -> FederatedAnswer:
        """The complete answer of *query* over the union graph (unless
        an endpoint truncates, which the result reports)."""
        requests = 0
        transferred = 0
        truncated = False

        schema_columns: Optional[Tuple[HeadTerm, ...]] = None
        rows: Set[Row] = set()
        head_variables = {
            item for item in query.head if isinstance(item, Variable)
        }
        for index, atom in enumerate(query.atoms):
            # Expose every variable of the atom that joins elsewhere or
            # is distinguished (same rule as cover fragment heads).
            needed: Set[Variable] = set(head_variables)
            for other_index, other in enumerate(query.atoms):
                if other_index != index:
                    needed.update(other.variables())
            exposed = tuple(
                variable
                for variable in sorted(atom.variables(), key=lambda v: v.name)
                if variable in needed or variable in head_variables
            ) or tuple(sorted(atom.variables(), key=lambda v: v.name))[:1]
            if not atom.variables():
                exposed = ()
            atom_rows, atom_truncated, atom_requests, atom_transferred = (
                self._fetch_atom(atom, exposed)
            )
            requests += atom_requests
            transferred += atom_transferred
            truncated = truncated or atom_truncated
            if schema_columns is None:
                schema_columns, rows = exposed, atom_rows
            else:
                schema_columns, rows = _join_relations(
                    schema_columns, rows, exposed, atom_rows
                )
            if not rows and not atom.is_ground():
                break

        positions: Dict[Variable, int] = {}
        for column_index, item in enumerate(schema_columns or ()):
            if isinstance(item, Variable) and item not in positions:
                positions[item] = column_index
        projected: Set[Row] = set()
        for row in rows:
            output: List[Term] = []
            for item in query.head:
                if isinstance(item, Variable):
                    output.append(row[positions[item]])
                else:
                    output.append(item)
            projected.add(tuple(output))
        return FederatedAnswer(
            frozenset(projected), truncated, requests, transferred
        )

    # ------------------------------------------------------------------

    def total_triples(self) -> int:
        return sum(endpoint.triple_count for endpoint in self.endpoints)

    def reset_counters(self) -> None:
        for endpoint in self.endpoints:
            endpoint.reset_counters()
