"""repro — Reformulation-based query answering in RDF.

A full reproduction of Bursztyn, Goasdoué & Manolescu,
"Reformulation-based query answering in RDF: alternatives and
performance" (VLDB 2015): the RDF/RDFS data model and entailment of
the DB fragment, saturation- and reformulation-based query answering
(UCQ, SCQ, cover-based JUCQ), the cost model and the greedy cover
search GCov, a relational triple-store substrate with three backend
profiles, a Datalog alternative, and LUBM-style/INSEE-like/DBLP-like
workloads.

Quickstart::

    from repro import QueryAnswerer, Strategy
    from repro.datasets import books_dataset

    graph, schema, query = books_dataset()
    answerer = QueryAnswerer(graph, schema)
    report = answerer.answer(query, Strategy.REF_GCOV)
    print(report.answer)
"""

from .cache import QueryCache
from .core import AnswerReport, QueryAnswerer, Strategy
from .resilience import BudgetExceeded, ExecutionBudget
from .service import (
    AdmissionRejected,
    QueryRequest,
    QueryService,
    TenantConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionRejected",
    "AnswerReport",
    "BudgetExceeded",
    "ExecutionBudget",
    "QueryAnswerer",
    "QueryCache",
    "QueryRequest",
    "QueryService",
    "Strategy",
    "TenantConfig",
    "__version__",
]
