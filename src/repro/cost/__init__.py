"""Cost model: cardinality estimation and plan costing (S7)."""

from . import cardinality
from .model import annotate_node, annotate_plan, plan_cost

__all__ = ["annotate_node", "annotate_plan", "cardinality", "plan_cost"]
