"""Cardinality estimation from triple-table statistics.

The cost function ``c`` of the paper "may reflect any (combination of)
query evaluation costs, such as I/O, CPU etc.; in [5] we computed c
based on database textbook formulas" (Section 4).  The textbook
formulas need cardinalities; this module estimates them:

* **scans** — exact per-property counts; ``rdf:type`` scans with a
  constant class use the exact class cardinality; other constant
  positions assume uniformity over the property's distinct values;
* **joins** — the System-R rule: ``|L ⋈ R| = |L|·|R| / Π_a
  max(V(L,a), V(R,a))`` over the shared variables ``a``, where ``V``
  is the number of distinct values of the column, propagated through
  operators with the usual min/containment assumptions;
* **unions** — sum of the inputs (duplicates estimated away only by an
  explicit distinct).

Estimates are floats ≥ 0; downstream code must not assume integers.
"""

from __future__ import annotations

from typing import Dict

from ..query.algebra import Variable
from ..engine.ir import (
    JoinNode,
    ScanNode,
)
from ..storage.statistics import StoreStatistics


def estimate_scan(
    scan: ScanNode,
    statistics: StoreStatistics,
    type_property_id,
    exact_constants: bool = False,
) -> float:
    """Estimated output rows of a triple-pattern scan.

    With ``exact_constants`` (an MCV-style lookup), a scan with one
    bound subject/object uses the exact per-value frequency; otherwise
    the classical uniformity assumption divides the property extent by
    the distinct count — the paper's textbook formula, and the
    default.  Ablation A1 compares the two.
    """
    subject_id, property_id, object_id = scan.bound_positions()
    range_spec = scan.range_spec()
    if range_spec is not None:
        position, (lo, hi) = range_spec
        if position == 1:
            # Property-position interval (subproperty subtree): the
            # stored per-property counts summed over the id range —
            # interval statistics, not a summed union of branches.
            return float(
                sum(statistics.property_count(pid) for pid in range(lo, hi))
            )
        if position == 2 and property_id is not None:
            if property_id == type_property_id:
                # Type interval: exact class cardinalities summed.
                rows = float(
                    sum(statistics.class_count(cid) for cid in range(lo, hi))
                )
            else:
                rows = float(
                    sum(
                        statistics.property_object_count(property_id, oid)
                        for oid in range(lo, hi)
                    )
                )
            if subject_id is not None:
                distinct = statistics.property_distinct_subjects(property_id)
                rows = rows / distinct if distinct else min(rows, 1.0)
            return rows
        # Other shapes (subject-position range, object range with the
        # property unbound): fall through — the range is treated as
        # unbound, a safe overestimate.
    if property_id is None:
        # Unbound property: the whole table, narrowed by bound s/o
        # assuming uniformity over global distinct values.
        rows = float(statistics.total_triples)
        if subject_id is not None and statistics.distinct_subjects:
            rows /= statistics.distinct_subjects
        if object_id is not None and statistics.distinct_objects:
            rows /= statistics.distinct_objects
        return rows

    rows = float(statistics.property_count(property_id))
    if rows == 0.0:
        return 0.0
    if property_id == type_property_id and object_id is not None:
        rows = float(statistics.class_count(object_id))
        if subject_id is not None:
            # A fully bound membership test.
            classes = statistics.property_distinct_subjects(property_id)
            rows = rows / classes if classes else min(rows, 1.0)
        return rows
    if subject_id is not None and object_id is not None:
        # Fully bound: at most one triple; estimate via the rarer side.
        if exact_constants:
            return float(
                min(
                    1,
                    statistics.property_subject_count(property_id, subject_id),
                    statistics.property_object_count(property_id, object_id),
                )
            )
        distinct_s = statistics.property_distinct_subjects(property_id)
        distinct_o = statistics.property_distinct_objects(property_id)
        if distinct_s:
            rows /= distinct_s
        if distinct_o:
            rows /= distinct_o
        return rows
    if subject_id is not None:
        if exact_constants:
            return float(
                statistics.property_subject_count(property_id, subject_id)
            )
        distinct = statistics.property_distinct_subjects(property_id)
        return rows / distinct if distinct else 0.0
    if object_id is not None:
        if exact_constants:
            return float(
                statistics.property_object_count(property_id, object_id)
            )
        distinct = statistics.property_distinct_objects(property_id)
        return rows / distinct if distinct else 0.0
    return rows


def scan_column_distincts(
    scan: ScanNode, statistics: StoreStatistics, rows: float
) -> Dict[Variable, float]:
    """Distinct-value estimates for each variable column of a scan."""
    subject_id, property_id, object_id = scan.bound_positions()
    distincts: Dict[Variable, float] = {}
    for position, (kind, value) in enumerate(scan.positions):
        if kind != "var":
            continue
        variable = value
        if property_id is not None:
            if position == 0:
                column = float(statistics.property_distinct_subjects(property_id))
            elif position == 2:
                column = float(statistics.property_distinct_objects(property_id))
            else:
                column = 1.0  # property position bound by definition here
        else:
            if position == 0:
                column = float(statistics.distinct_subjects)
            elif position == 1:
                column = float(statistics.distinct_properties)
            else:
                column = float(statistics.distinct_objects)
        # A column can never have more distinct values than rows.
        previous = distincts.get(variable)
        column = max(1.0, min(column, rows)) if rows else 0.0
        if previous is None or column < previous:
            distincts[variable] = column
    return distincts


def estimate_join(
    left_rows: float,
    right_rows: float,
    left_distincts: Dict[Variable, float],
    right_distincts: Dict[Variable, float],
    join_variables,
) -> float:
    """System-R join cardinality with independence across keys."""
    rows = left_rows * right_rows
    for variable in join_variables:
        denominator = max(
            left_distincts.get(variable, 1.0), right_distincts.get(variable, 1.0)
        )
        if denominator > 0:
            rows /= denominator
    return rows


def join_column_distincts(
    join: JoinNode, rows: float
) -> Dict[Variable, float]:
    """Propagate distinct counts through a join: a surviving column
    keeps at most its input distinct count, capped by the output size."""
    distincts: Dict[Variable, float] = {}
    for source in (join.left, join.right):
        for variable, value in source.column_distincts.items():
            current = distincts.get(variable)
            candidate = min(value, rows) if rows else 0.0
            if current is None or candidate < current:
                distincts[variable] = candidate
    return distincts


def distinct_output_rows(child_rows: float, child_distincts: Dict[Variable, float]) -> float:
    """Estimated rows after duplicate elimination: bounded by the
    product of the per-column distincts (independence), and by the
    input size."""
    if not child_distincts:
        return min(child_rows, 1.0) if child_rows else 0.0
    product = 1.0
    for value in child_distincts.values():
        product *= max(value, 1.0)
    return min(child_rows, product)
