"""The cost model: textbook I/O + CPU formulas over annotated plans.

"To select the cover leading to the most efficient evaluation, we rely
on a cost estimation function c which, for a JUCQ q, returns the cost
of evaluating it through an RDBMS storing the database" (Section 4,
GCov).  :func:`annotate_plan` walks a physical plan bottom-up, filling
``estimated_rows``, ``column_distincts`` and ``estimated_cost`` on
every node from the store statistics and a backend profile's cost
constants:

* scan         — ``io_cost`` per tuple fetched from the chosen index;
* hash join    — build (``hash_build_cost``) on the smaller input +
                 probe (``cpu_cost``) on both + output;
* merge join   — ``sort_cost_factor · n log₂ n`` per input + merge;
* nested loop  — ``cpu_cost · |L|·|R|`` (the quadratic worst case);
* union        — ``dedup_cost`` per input tuple (set semantics);
* distinct     — ``dedup_cost`` per input tuple;
* project      — ``cpu_cost`` per tuple.

The absolute unit is arbitrary; only comparisons matter, which is all
GCov needs.  Experiment E8 measures how well the estimates rank covers
against observed runtimes.
"""

from __future__ import annotations

import math
from typing import Optional

from ..storage.backends import BackendProfile
from ..engine.ir import (
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    RelationNode,
    ScanNode,
    UnionNode,
)
from ..storage.statistics import StoreStatistics
from . import cardinality


def _log2(value: float) -> float:
    return math.log2(value) if value > 1.0 else 0.0


def annotate_plan(
    node: PlanNode,
    statistics: StoreStatistics,
    backend: BackendProfile,
    type_property_id: Optional[int],
) -> PlanNode:
    """Annotate *node* (and its subtree) in place; returns the node."""
    for child in node.children():
        annotate_plan(child, statistics, backend, type_property_id)
    return annotate_node(node, statistics, backend, type_property_id)


def annotate_node(
    node: PlanNode,
    statistics: StoreStatistics,
    backend: BackendProfile,
    type_property_id: Optional[int],
) -> PlanNode:
    """Annotate one node, assuming its children are already annotated.

    The cover optimizer uses this to price join trees over *cached*
    fragment plans without re-walking their (possibly large) subtrees.
    """
    if isinstance(node, EmptyNode):
        node.estimated_rows = 0.0
        node.estimated_cost = 0.0
        node.column_distincts = {}

    elif isinstance(node, RelationNode):
        # An already-materialized relation: its size is exact and it
        # costs one CPU pass to stream.
        rows = float(len(node.rows))
        node.estimated_rows = rows
        node.column_distincts = {
            label: rows for label in node.columns if label is not None
        }
        node.estimated_cost = backend.cpu_cost * rows

    elif isinstance(node, ScanNode):
        rows = cardinality.estimate_scan(
            node, statistics, type_property_id, backend.exact_constant_stats
        )
        node.estimated_rows = rows
        node.column_distincts = cardinality.scan_column_distincts(
            node, statistics, rows
        )
        node.estimated_cost = backend.io_cost * rows

    elif isinstance(node, JoinNode):
        left, right = node.left, node.right
        rows = cardinality.estimate_join(
            left.estimated_rows,
            right.estimated_rows,
            left.column_distincts,
            right.column_distincts,
            node.join_variables,
        )
        node.estimated_rows = rows
        node.column_distincts = cardinality.join_column_distincts(node, rows)
        node.estimated_cost = _join_cost(node, backend)

    elif isinstance(node, ProjectNode):
        node.estimated_rows = node.child.estimated_rows
        kept = {label for label in node.columns if label is not None}
        node.column_distincts = {
            variable: value
            for variable, value in node.child.column_distincts.items()
            if variable in kept
        }
        node.estimated_cost = backend.cpu_cost * node.child.estimated_rows

    elif isinstance(node, NonLiteralFilterNode):
        # Pass-through estimate: guards rarely drop many rows, and an
        # overestimate only makes guarded plans marginally pricier.
        node.estimated_rows = node.child.estimated_rows
        node.column_distincts = dict(node.child.column_distincts)
        node.estimated_cost = backend.cpu_cost * node.child.estimated_rows

    elif isinstance(node, UnionNode):
        total = sum(child.estimated_rows for child in node.children())
        node.estimated_rows = total
        merged = {}
        for child in node.children():
            for variable, value in child.column_distincts.items():
                merged[variable] = merged.get(variable, 0.0) + value
        node.column_distincts = {
            variable: min(value, total) for variable, value in merged.items()
        }
        node.estimated_cost = backend.dedup_cost * total

    elif isinstance(node, DistinctNode):
        child = node.child
        node.estimated_rows = cardinality.distinct_output_rows(
            child.estimated_rows, child.column_distincts
        )
        node.column_distincts = dict(child.column_distincts)
        node.estimated_cost = backend.dedup_cost * child.estimated_rows

    else:
        raise TypeError("cannot cost %r" % (node,))
    return node


def _join_cost(node: JoinNode, backend: BackendProfile) -> float:
    left_rows = node.left.estimated_rows
    right_rows = node.right.estimated_rows
    output = node.estimated_rows
    if node.algorithm == "hash":
        build = min(left_rows, right_rows)
        probe = max(left_rows, right_rows)
        return (
            backend.hash_build_cost * build
            + backend.cpu_cost * (build + probe)
            + backend.cpu_cost * output
        )
    if node.algorithm == "merge":
        sort = backend.sort_cost_factor * (
            left_rows * _log2(left_rows) + right_rows * _log2(right_rows)
        )
        return sort + backend.cpu_cost * (left_rows + right_rows + output)
    # nested loop
    return backend.cpu_cost * (left_rows * max(right_rows, 1.0) + output)


def plan_cost(node: PlanNode) -> float:
    """Cumulative estimated cost of an annotated plan."""
    return node.total_estimated_cost()
