"""The execution engine: plan IR, pipelined executor, SQL lowering.

One backend-neutral operator algebra (:mod:`repro.engine.ir`) shared
by the planner, the cost model, EXPLAIN and every executor; a
pipelined batch executor (:mod:`repro.engine.pipeline`) with
per-operator metrics and mid-pipeline budget enforcement; and an
IR→SQL lowering (:mod:`repro.engine.lowering`) for real RDBMSs.
"""

from .ir import (
    ColumnLabel,
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    PositionSpec,
    ProjectNode,
    ProjectionSpec,
    RelationNode,
    ScanNode,
    UnionNode,
)
from .lowering import LoweringError, lower
from .metrics import OperatorMetrics, PipelineMetrics
from .pipeline import (
    DEFAULT_BATCH_SIZE,
    RelationContext,
    StoreContext,
    iter_scan_rows,
    join_relations,
    run_on_store,
    run_plan,
)

__all__ = [
    "ColumnLabel",
    "DEFAULT_BATCH_SIZE",
    "DistinctNode",
    "EmptyNode",
    "JoinNode",
    "LoweringError",
    "NonLiteralFilterNode",
    "OperatorMetrics",
    "PipelineMetrics",
    "PlanNode",
    "PositionSpec",
    "ProjectNode",
    "ProjectionSpec",
    "RelationContext",
    "RelationNode",
    "ScanNode",
    "StoreContext",
    "UnionNode",
    "iter_scan_rows",
    "join_relations",
    "lower",
    "run_on_store",
    "run_plan",
]
