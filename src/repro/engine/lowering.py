"""Lowering the plan IR to SQL over the triple table.

The third consumer of the IR (after the materialized interpreter and
the pipelined executor): a plan becomes one SQL statement over the
dictionary-encoded triple table ``t(s, p, o)`` and the ``dict(id,
kind)`` side table — the shape the paper hands to its RDBMSs.

The lowering is purely structural; it never consults statistics
(the target engine replans anyway), so plans fed to it are usually
compiled with ``Planner(store, annotate=False)``:

* a CQ subtree — a :class:`~repro.engine.ir.ProjectNode` over joins,
  scans and non-literal filters — flattens to one ``SELECT DISTINCT``
  with a self-join of ``t`` per scan, constants as parameters, shared
  variables as equality predicates, guards as ``kind`` sub-selects;
* a :class:`~repro.engine.ir.UnionNode` becomes ``UNION`` of its
  lowered children (set semantics for free; empty children dropped);
* a JUCQ plan — project over a join of union fragments — becomes the
  fragment SELECTs as CTEs joined in an outer ``SELECT DISTINCT``.

Scan constants are emitted as ``?`` parameters; range positions
(hierarchy-encoded interval atoms) become ``BETWEEN``-style
``col >= ? AND col < ?`` predicates; projection constants are already
dictionary-encoded by the planner and are inlined, except ``("term",
Term)`` specs — constants the dictionary never stored — which are
emitted as ``?`` parameters carrying the term's N3 text.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..query.algebra import Variable
from .ir import (
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    UnionNode,
)

#: (sql, parameters): parameters are term ids / range bounds (int) or
#: N3 text for ("term", Term) projection constants (str).
LoweredSql = Tuple[str, List]


class LoweringError(ValueError):
    """The plan has no SQL translation (unexpected operator shape)."""


class _NotFlat(Exception):
    """Internal: the subtree is not a flat scan/join/filter shape."""


def lower(plan: PlanNode) -> LoweredSql:
    """One SQL statement (sql, parameters) computing *plan*."""
    if isinstance(plan, DistinctNode):
        # Lowered SELECTs are DISTINCT and UNION deduplicates, so the
        # child statement already has set semantics.
        return lower(plan.child)
    if isinstance(plan, EmptyNode):
        return _empty_select(plan.arity)
    if isinstance(plan, UnionNode):
        return _lower_union(plan)
    if isinstance(plan, ProjectNode):
        try:
            return _lower_flat_select(plan)
        except _NotFlat:
            return _lower_project_over_fragments(plan)
    raise LoweringError("cannot lower %r to SQL" % (plan,))


def _empty_select(arity: int) -> LoweredSql:
    """A uniform empty result with the right arity."""
    columns = ", ".join("NULL AS c%d" % i for i in range(max(arity, 1)))
    return "SELECT %s WHERE 0" % columns, []


def _lower_union(union: UnionNode) -> LoweredSql:
    selects: List[str] = []
    parameters: List = []
    for child in union.children():
        if isinstance(child, EmptyNode):
            continue  # an absent-constant disjunct matches nothing
        sql, params = lower(child)
        selects.append(sql)
        parameters.extend(params)
    if not selects:
        return _empty_select(union.arity)
    return " UNION ".join(selects), parameters


def _collect_flat(node: PlanNode, scans: List[ScanNode],
                  guards: List[Variable]) -> None:
    if isinstance(node, ScanNode):
        scans.append(node)
    elif isinstance(node, JoinNode):
        _collect_flat(node.left, scans, guards)
        _collect_flat(node.right, scans, guards)
    elif isinstance(node, NonLiteralFilterNode):
        guards.extend(node.variables)
        _collect_flat(node.child, scans, guards)
    else:
        raise _NotFlat


def _lower_flat_select(project: ProjectNode) -> LoweredSql:
    """One SELECT DISTINCT over self-joins of ``t`` (the CQ shape)."""
    scans: List[ScanNode] = []
    guards: List[Variable] = []
    _collect_flat(project.child, scans, guards)
    if not scans:
        raise LoweringError("a flat select needs at least one scan")

    column_of: Dict[Variable, str] = {}
    conditions: List[str] = []
    where_parameters: List = []
    for index, scan in enumerate(scans):
        alias = "t%d" % index
        for column, (kind, value) in zip(("s", "p", "o"), scan.positions):
            reference = "%s.%s" % (alias, column)
            if kind == "var":
                bound = column_of.get(value)
                if bound is None:
                    column_of[value] = reference
                else:
                    conditions.append("%s = %s" % (reference, bound))
            elif kind == "range":
                # A hierarchy-interval atom: half-open id range.
                conditions.append(
                    "%s >= ? AND %s < ?" % (reference, reference)
                )
                where_parameters.extend(value)
            else:
                conditions.append("%s = ?" % reference)
                where_parameters.append(value)

    for variable in sorted(set(guards), key=lambda v: v.name):
        conditions.append(
            "%s NOT IN (SELECT id FROM dict WHERE kind = 'literal')"
            % column_of[variable]
        )

    select_items, select_parameters = _select_items(project, column_of)
    from_clause = ", ".join("t AS t%d" % index for index in range(len(scans)))
    sql = "SELECT DISTINCT %s FROM %s" % (", ".join(select_items), from_clause)
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    # Parameter order follows SQL text order: SELECT items first.
    return sql, select_parameters + where_parameters


def _select_items(
    project: ProjectNode, column_of: Dict[Variable, str]
) -> Tuple[List[str], List]:
    """(items, parameters): ("term", Term) specs — constants the
    dictionary never stored — carry their N3 text as a parameter."""
    items: List[str] = []
    parameters: List = []
    for position, (kind, value) in enumerate(project.specs):
        if kind == "var":
            items.append("%s AS c%d" % (column_of[value], position))
        elif kind == "term":
            items.append("? AS c%d" % position)
            parameters.append(value.n3())
        else:
            items.append("%d AS c%d" % (value, position))
    if not items:
        items.append("1 AS c0")  # boolean query: any witness row
    return items, parameters


def fragment_leaves(node: PlanNode) -> List[PlanNode]:
    """The leaves of a join chain, left to right (JUCQ fragments)."""
    if isinstance(node, JoinNode):
        return fragment_leaves(node.left) + fragment_leaves(node.right)
    return [node]


def fragment_column_map(
    fragments: List[PlanNode], name_of
) -> Tuple[Dict[Variable, str], List[Tuple[str, int, str]]]:
    """Variable→column references and join conditions across fragments.

    ``name_of(index)`` names fragment *index*'s relation.  Returns the
    first-occurrence column of each variable and, for every repeat
    occurrence, a ``(fragment_name, position, condition)`` triple — the
    materialized JUCQ path uses the position to index the join column.
    """
    column_of: Dict[Variable, str] = {}
    joins: List[Tuple[str, int, str]] = []
    for index, fragment in enumerate(fragments):
        name = name_of(index)
        for position, label in enumerate(fragment.columns):
            if label is None:
                continue
            reference = "%s.c%d" % (name, position)
            bound = column_of.get(label)
            if bound is None:
                column_of[label] = reference
            else:
                joins.append((name, position, "%s = %s" % (reference, bound)))
    return column_of, joins


def _lower_project_over_fragments(project: ProjectNode) -> LoweredSql:
    """The JUCQ shape: fragment plans as CTEs, joined and projected."""
    fragments = fragment_leaves(project.child)
    ctes: List[str] = []
    parameters: List = []
    for index, fragment in enumerate(fragments):
        sql, params = lower(fragment)
        ctes.append("f%d AS (%s)" % (index, sql))
        parameters.extend(params)
    column_of, joins = fragment_column_map(fragments, lambda i: "f%d" % i)
    select_items, select_parameters = _select_items(project, column_of)
    sql = "WITH %s SELECT DISTINCT %s FROM %s" % (
        ", ".join(ctes),
        ", ".join(select_items),
        ", ".join("f%d" % index for index in range(len(fragments))),
    )
    conditions = [condition for _, _, condition in joins]
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    # Text order: CTEs first, then the outer SELECT's items.
    return sql, parameters + select_parameters
