"""The plan IR: one backend-neutral operator algebra for every engine.

A plan is a tree of nodes over dictionary-encoded rows.  Plans are
*descriptions*: the planner builds them, the cost model annotates them
(``estimated_rows`` / ``estimated_cost`` / ``column_distincts``), and
an executor interprets them.  Keeping the three phases separate is
what lets GCov price a cover without running it — the whole point of
cost-based reformulation — and what lets several executors share one
plan language:

* the **materialized** interpreter (:mod:`repro.storage.executor`),
  which computes every operator's full output — the paper's RDBMS
  model, where Example 1's SCQ materializes 33M intermediate rows;
* the **pipelined** executor (:mod:`repro.engine.pipeline`), whose
  operators are generators yielding fixed-size row batches, so the
  same plan runs in bounded memory with per-operator metrics;
* the **SQL lowering** (:mod:`repro.engine.lowering`), which turns a
  plan into one statement for a real RDBMS.

Row model: a row is a tuple of values — integer term ids when the plan
runs against a :class:`~repro.storage.store.TripleStore`, decoded
:class:`~repro.rdf.terms.Term` objects when it runs over in-memory
relations (:class:`RelationNode`, the federation client's case).  A
node's ``columns`` tuple labels each position with the
:class:`Variable` it carries, or ``None`` for a constant/payload
column (constants bound by reformulation are payload: they join
nothing but appear in answers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..query.algebra import Variable

#: A column label: the variable the column binds, or None for payload.
ColumnLabel = Optional[Variable]
#: A scan position: ("const", term_id), ("var", Variable), or
#: ("range", (lo, hi)) — a half-open id interval (the physical form of
#: a hierarchy-encoded interval atom).  A range position is filtered,
#: not bound: it contributes no output column and no join variable.
PositionSpec = Tuple[str, Union[int, Variable, Tuple[int, int]]]
#: A projection column: ("var", Variable), ("const", term_id), or
#: ("term", Term) — a constant the query names but the dictionary never
#: stored, emitted as a ready term (query answering must not grow the
#: dictionary).
ProjectionSpec = Tuple[str, object]


class PlanNode:
    """Base class; concrete nodes define ``columns`` and children."""

    def __init__(self, columns: Sequence[ColumnLabel]):
        self.columns: Tuple[ColumnLabel, ...] = tuple(columns)
        # Filled by the cost annotator.
        self.estimated_rows: float = 0.0
        self.estimated_cost: float = 0.0
        self.column_distincts: Dict[Variable, float] = {}
        # Filled by the executor.
        self.actual_rows: Optional[int] = None

    def children(self) -> List["PlanNode"]:
        return []

    @property
    def arity(self) -> int:
        return len(self.columns)

    def variable_positions(self) -> Dict[Variable, int]:
        """First column index of each variable in this node's output."""
        positions: Dict[Variable, int] = {}
        for index, label in enumerate(self.columns):
            if label is not None and label not in positions:
                positions[label] = index
        return positions

    def total_estimated_cost(self) -> float:
        """This node's cost plus its subtree's."""
        return self.estimated_cost + sum(
            child.total_estimated_cost() for child in self.children()
        )

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()

    def atom_count(self) -> int:
        """Number of scan atoms in the subtree (the parse-limit size)."""
        return sum(1 for node in self.walk() if isinstance(node, ScanNode))


class ScanNode(PlanNode):
    """One access to the triple table, with constants pushed into the
    best index: the physical form of a triple pattern."""

    def __init__(self, positions: Sequence[PositionSpec]):
        if len(positions) != 3:
            raise ValueError("a scan needs exactly 3 position specs")
        labels: List[ColumnLabel] = []
        seen: set = set()
        for kind, value in positions:
            if kind == "var":
                if value in seen:
                    continue  # repeated variable: filtered, single column
                seen.add(value)
                labels.append(value)
        self.positions: Tuple[PositionSpec, ...] = tuple(positions)
        super().__init__(labels)

    def bound_positions(self) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        """(s, p, o) ids with None for variables (and range positions,
        which filter rather than bind)."""
        return tuple(
            value if kind == "const" else None for kind, value in self.positions
        )  # type: ignore[return-value]

    def range_spec(self) -> Optional[Tuple[int, Tuple[int, int]]]:
        """``(position_index, (lo, hi))`` of the range position, or
        None.  The planner emits at most one range per scan (one
        interval atom per pattern position is all reformulation
        produces)."""
        for index, (kind, value) in enumerate(self.positions):
            if kind == "range":
                return index, value  # type: ignore[return-value]
        return None

    def __repr__(self) -> str:
        def show(kind, value):
            if kind == "var":
                return "?%s" % value.name
            if kind == "range":
                return "#[%d..%d)" % value
            return "#%d" % value

        return "Scan(%s)" % (", ".join(
            show(kind, value) for kind, value in self.positions
        ))


class EmptyNode(PlanNode):
    """A scan known to be empty at planning time (a constant absent
    from the dictionary cannot match anything)."""

    def __repr__(self) -> str:
        return "Empty(arity=%d)" % self.arity


class RelationNode(PlanNode):
    """A leaf over an already-materialized in-memory relation.

    The bridge between the IR and callers that hold rows rather than a
    store: the federation client joins per-atom sub-answers fetched
    from remote endpoints, and the reference evaluator joins fragment
    answers it computed by backtracking.  Rows are whatever the caller
    works in (term ids or decoded terms); the row values are opaque to
    every operator except :class:`NonLiteralFilterNode`.

    ``charged`` records whether the rows were already charged against
    the caller's budget when they materialized; the pipelined executor
    then streams them without re-charging (a row must be paid for
    exactly once).
    """

    def __init__(
        self,
        columns: Sequence[ColumnLabel],
        rows: Sequence[Tuple],
        charged: bool = True,
    ):
        self.rows: List[Tuple] = list(rows)
        self.charged = charged
        super().__init__(columns)
        self.estimated_rows = float(len(self.rows))

    def __repr__(self) -> str:
        return "Relation(%d rows, arity=%d)" % (len(self.rows), self.arity)


class JoinNode(PlanNode):
    """A binary join on the variables common to both inputs.

    ``algorithm`` is one of 'hash', 'merge', 'nested_loop'; with no
    common variables the join degenerates to a cross product (legal,
    costed accordingly)."""

    def __init__(self, left: PlanNode, right: PlanNode, algorithm: str):
        if algorithm not in ("hash", "merge", "nested_loop"):
            raise ValueError("unknown join algorithm %r" % algorithm)
        self.left = left
        self.right = right
        self.algorithm = algorithm
        left_vars = left.variable_positions()
        self.join_variables: Tuple[Variable, ...] = tuple(
            label
            for label in right.variable_positions()
            if label in left_vars
        )
        keep_right = [
            index
            for index, label in enumerate(right.columns)
            if label is None or label not in left_vars
        ]
        self.keep_right_indexes: Tuple[int, ...] = tuple(keep_right)
        columns = tuple(left.columns) + tuple(
            right.columns[index] for index in keep_right
        )
        super().__init__(columns)

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def __repr__(self) -> str:
        return "Join[%s on %s]" % (
            self.algorithm,
            ",".join("?%s" % v.name for v in self.join_variables) or "×",
        )


class ProjectNode(PlanNode):
    """Positional projection, injecting reformulation-bound constants."""

    def __init__(self, child: PlanNode, specs: Sequence[ProjectionSpec]):
        self.child = child
        self.specs: Tuple[ProjectionSpec, ...] = tuple(specs)
        labels: List[ColumnLabel] = []
        for kind, value in self.specs:
            labels.append(value if kind == "var" else None)
        super().__init__(labels)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def __repr__(self) -> str:
        return "Project(%s)" % (", ".join(
            ("?%s" % value.name) if kind == "var" else "#%s" % (value,)
            for kind, value in self.specs
        ))


class UnionNode(PlanNode):
    """Set union of same-arity inputs (UCQ semantics: duplicates out).

    Column labels are taken positionally from the declared output
    schema, because different disjuncts may bind a position to a
    variable in one branch and a constant in another."""

    def __init__(self, children: Sequence[PlanNode], columns: Sequence[ColumnLabel]):
        if not children:
            raise ValueError("a union needs at least one input")
        arity = len(columns)
        for child in children:
            if child.arity != arity:
                raise ValueError(
                    "union arity mismatch: %d vs %d" % (arity, child.arity)
                )
        self._children = list(children)
        super().__init__(columns)

    def children(self) -> List[PlanNode]:
        return list(self._children)

    def __repr__(self) -> str:
        return "Union(<%d inputs>)" % len(self._children)


class NonLiteralFilterNode(PlanNode):
    """Drops rows binding any of ``variables`` to a literal.

    The physical form of a reformulated CQ's non-literal guard (the
    range-typing rule must not type literals); in SQL this would be a
    ``WHERE kind(col) <> 'literal'`` predicate on the dictionary.
    """

    def __init__(self, child: PlanNode, variables: Sequence[Variable]):
        self.child = child
        self.variables: Tuple[Variable, ...] = tuple(variables)
        positions = child.variable_positions()
        missing = [v for v in self.variables if v not in positions]
        if missing:
            raise ValueError(
                "guarded variables %s not in child columns" % (missing,)
            )
        super().__init__(child.columns)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def __repr__(self) -> str:
        return "NonLiteralFilter(%s)" % ", ".join(
            "?%s" % variable.name for variable in self.variables
        )


class DistinctNode(PlanNode):
    """Duplicate elimination (final answers use set semantics)."""

    def __init__(self, child: PlanNode):
        self.child = child
        super().__init__(child.columns)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def __repr__(self) -> str:
        return "Distinct"
