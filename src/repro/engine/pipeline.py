"""The pipelined executor: plan operators as batch generators.

The materialized interpreter (:mod:`repro.storage.executor`) computes
every operator's full output before its parent sees a row — faithful
to the paper's RDBMS model, and exactly why Example 1's SCQ pays 33M
intermediate rows for a 2,296-row answer.  This module runs the *same*
plan IR as a pipeline: every operator is a generator yielding
fixed-size row batches, so rows flow from scans to the answer without
materializing any operator's output, and only genuinely stateful
operators buffer anything (hash-join build tables, sort buffers for
merge joins, dedup sets).

Three properties the design guarantees:

* **Bounded memory where the algebra allows it.**  Unions stream
  without deduplicating — duplicate elimination is deferred to the
  nearest downstream :class:`~repro.engine.ir.DistinctNode` or to the
  final answer set, which dedups anyway (answers are sets).  A join's
  streamed output is never buffered.  The per-operator and global
  buffered-row peaks are recorded in
  :class:`~repro.engine.metrics.PipelineMetrics`.
* **Mid-pipeline budget enforcement.**  Every operator's output is
  charged against the caller's
  :class:`~repro.resilience.budget.ExecutionBudget` *per batch*, so a
  row or time budget fires after at most ``batch_size`` surplus rows —
  before an SCQ's cross-product materializes, not after.
* **Answer equivalence.**  For every plan the collected answer equals
  the materialized interpreter's (the differential harness in
  ``tests/test_engine_equivalence.py`` checks all strategies); only
  row *multiplicities* along the pipe may differ, because deferred
  dedup lets duplicates travel.

The executor is backend-neutral: it reads rows through an execution
context.  :class:`StoreContext` scans a dictionary-encoded triple
store; :class:`RelationContext` executes plans whose leaves are
in-memory :class:`~repro.engine.ir.RelationNode` relations (decoded
terms — the federation client's local joins).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..parallel.pool import ExecutorPool, primary_error
from ..rdf.terms import Literal
from .ir import (
    ColumnLabel,
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    RelationNode,
    ScanNode,
    UnionNode,
)
from .metrics import OperatorMetrics, PipelineMetrics, _Stopwatch

Row = Tuple
Batch = List[Row]

#: Rows per batch: small enough that budgets fire long before a blowup
#: materializes, large enough that per-batch bookkeeping is noise.
DEFAULT_BATCH_SIZE = 256


# ---------------------------------------------------------------------------
# Execution contexts


def iter_scan_rows(node: ScanNode, store) -> Iterator[Row]:
    """Lazily yield the rows of one triple-table scan.

    The single scan implementation both engines share: the
    materialized interpreter drains it into a list, the pipeline pulls
    it batch by batch.
    """
    subject_id, property_id, object_id = node.bound_positions()
    range_info = node.range_spec()
    if (
        range_info is not None
        and range_info[0] == 2
        and property_id is not None
        and subject_id is None
    ):
        # Fast path for the interval-atom shape (?x, p, [lo..hi)):
        # one ordered POS sweep over the object range.
        lo, hi = range_info[1]
        matches: Iterable[Tuple[int, int, int]] = (
            (subject, property_id, object_)
            for subject, object_ in store.scan_property_object_range(
                property_id, lo, hi
            )
        )
        range_info = None
    elif range_info is not None and range_info[0] == 1:
        # Subproperty interval (s?, [lo..hi), o?): probe the window's
        # property ids instead of filtering a full-table scan.
        lo, hi = range_info[1]
        matches = store.scan_property_range(lo, hi, subject_id, object_id)
        range_info = None
    elif property_id is None:
        matches: Iterable[Tuple[int, int, int]] = (
            triple
            for triple in store.scan_all()
            if (subject_id is None or triple[0] == subject_id)
            and (object_id is None or triple[2] == object_id)
        )
    elif subject_id is not None and object_id is not None:
        encoded = (subject_id, property_id, object_id)
        matches = iter([encoded] if store.contains(encoded) else [])
    elif subject_id is not None:
        matches = (
            (subject_id, property_id, value)
            for value in store.scan_property_subject(property_id, subject_id)
        )
    elif object_id is not None:
        matches = (
            (value, property_id, object_id)
            for value in store.scan_property_object(property_id, object_id)
        )
    else:
        matches = (
            (subject, property_id, object_)
            for subject, object_ in store.scan_property(property_id)
        )

    if range_info is not None:
        # Generic fallback: the range position was treated as unbound
        # above; filter the id interval here.
        position, (lo, hi) = range_info
        matches = (
            triple for triple in matches if lo <= triple[position] < hi
        )

    for triple in matches:
        binding = {}
        consistent = True
        for (kind, value), term_id in zip(node.positions, triple):
            if kind != "var":
                continue
            bound = binding.get(value)
            if bound is None:
                binding[value] = term_id
            elif bound != term_id:
                consistent = False
                break
        if consistent:
            yield tuple(binding[label] for label in node.columns)


class StoreContext:
    """Execute against a dictionary-encoded triple store (int rows)."""

    def __init__(self, store):
        self.store = store

    def scan(self, node: ScanNode) -> Iterator[Row]:
        return iter_scan_rows(node, self.store)

    def is_literal(self, value) -> bool:
        return self.store.dictionary.is_literal_id(value)


class RelationContext:
    """Execute plans over in-memory relations (decoded-term rows)."""

    def scan(self, node: ScanNode) -> Iterator[Row]:
        raise TypeError(
            "RelationContext cannot execute %r: plans over in-memory "
            "relations must use RelationNode leaves" % (node,)
        )

    def is_literal(self, value) -> bool:
        return isinstance(value, Literal)


# ---------------------------------------------------------------------------
# The pipeline


class _Pipeline:
    """One pipelined execution: operators wired to shared accounting.

    ``pool`` (optional) turns every multi-child union into a *parallel
    union*: each child subtree is drained by its own pool worker (a
    *parallel scan*) into a bounded queue the consumer merges batches
    from.  Everything else — budget charging, metrics, answer
    collection — is unchanged; the budget and metrics objects are
    thread-safe, and answers are sets, so the merged order does not
    affect the result.
    """

    def __init__(self, ctx, metrics: PipelineMetrics, budget,
                 batch_size: int, pool: Optional[ExecutorPool] = None):
        self.ctx = ctx
        self.metrics = metrics
        self.budget = budget
        self.batch_size = batch_size
        self.pool = pool

    # -- plumbing ------------------------------------------------------

    def stream(self, node: PlanNode) -> Iterator[Batch]:
        """The metered output stream of *node*.

        Accounts rows/batches/wall-time on the node's metrics entry,
        mirrors the cumulative row count into ``node.actual_rows`` (so
        EXPLAIN works on pipelined runs too), and charges the budget
        per batch — except for :class:`RelationNode` leaves whose rows
        the caller already charged when they materialized.
        """
        entry = self.metrics.operator(node)
        source = self._operator(node, entry)
        charge = self.budget is not None and not (
            isinstance(node, RelationNode) and node.charged
        )
        node.actual_rows = 0
        watch = _Stopwatch(entry)
        try:
            while True:
                with watch:
                    batch = next(source, None)
                if batch is None:
                    return
                entry.rows_out += len(batch)
                entry.batches += 1
                node.actual_rows += len(batch)
                if charge:
                    self.budget.charge_rows(len(batch), operator=entry.label)
                elif self.budget is not None:
                    self.budget.check_time(operator=entry.label)
                yield batch
        finally:
            source.close()
            self.metrics.release(entry)

    def _pull(self, child: PlanNode, entry: OperatorMetrics) -> Iterator[Batch]:
        """Consume *child*'s stream, counting rows into *entry.rows_in*."""
        for batch in self.stream(child):
            entry.rows_in += len(batch)
            yield batch

    def _rebatch(self, rows: Iterable[Row]) -> Iterator[Batch]:
        batch: Batch = []
        for row in rows:
            batch.append(row)
            if len(batch) >= self.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    # -- operators -----------------------------------------------------

    def _operator(self, node: PlanNode, entry: OperatorMetrics) -> Iterator[Batch]:
        if isinstance(node, EmptyNode):
            # A generator (not iter(())) so stream()'s close() works.
            return (batch for batch in ())
        if isinstance(node, ScanNode):
            return self._rebatch(self.ctx.scan(node))
        if isinstance(node, RelationNode):
            return self._rebatch(iter(node.rows))
        if isinstance(node, UnionNode):
            return self._union(node, entry)
        if isinstance(node, ProjectNode):
            return self._project(node, entry)
        if isinstance(node, NonLiteralFilterNode):
            return self._filter(node, entry)
        if isinstance(node, DistinctNode):
            return self._distinct(node, entry)
        if isinstance(node, JoinNode):
            if node.algorithm == "merge":
                return self._merge_join(node, entry)
            if node.algorithm == "nested_loop":
                return self._nested_loop_join(node, entry)
            return self._hash_join(node, entry)
        raise TypeError("cannot execute %r" % (node,))

    def _union(self, node: UnionNode, entry: OperatorMetrics) -> Iterator[Batch]:
        # Deferred dedup: duplicates stream through and are eliminated
        # by the nearest Distinct (or the final answer set) — this is
        # what keeps a union over thousands of UCQ disjuncts from
        # buffering its whole extent the way the materialized engine
        # must.
        children = node.children()
        if (
            self.pool is not None
            and len(children) > 1
            and self.pool.usable()
        ):
            return self._parallel_union(children, entry)
        def serial() -> Iterator[Batch]:
            for child in children:
                yield from self._pull(child, entry)
        return serial()

    # -- parallel union / parallel scan --------------------------------

    def _parallel_scan(
        self,
        child: PlanNode,
        out: "queue_module.Queue",
        stop: threading.Event,
    ) -> None:
        """The producer half of a parallel union: drain one child
        subtree on a pool worker, pushing its batches into the bounded
        queue (backpressure: a fast child blocks rather than buffering
        unboundedly).  Errors — including a shared-budget trip, whose
        sibling producers abort on their own next charge — are relayed
        to the consumer; the ``done`` marker is unconditional so the
        consumer always knows when every producer has retired."""
        try:
            for batch in self.stream(child):
                relayed = False
                while not stop.is_set():
                    try:
                        out.put(("batch", batch), timeout=0.05)
                        relayed = True
                        break
                    except queue_module.Full:
                        continue
                if not relayed:
                    return
        except BaseException as exc:  # relayed; the consumer re-raises
            while not stop.is_set():
                try:
                    out.put(("error", exc), timeout=0.05)
                    break
                except queue_module.Full:
                    continue
        finally:
            out.put(("done", None))

    def _parallel_union(
        self, children: Sequence[PlanNode], entry: OperatorMetrics
    ) -> Iterator[Batch]:
        """The consumer half: fan the union's children out as parallel
        scans and merge their fixed-size batches as they arrive.  On
        any child's error the stop flag cancels the siblings (their
        pending puts abandon) and the primary error is re-raised once
        every producer has retired."""
        capacity = max(4, 2 * self.pool.workers)
        out: "queue_module.Queue" = queue_module.Queue(maxsize=capacity)
        stop = threading.Event()
        for child in children:
            self.pool.submit(self._parallel_scan, child, out, stop)
        retired = 0
        errors: List[BaseException] = []
        try:
            while retired < len(children):
                kind, payload = out.get()
                if kind == "done":
                    retired += 1
                elif kind == "error":
                    errors.append(payload)
                    stop.set()
                elif not errors:
                    entry.rows_in += len(payload)
                    yield payload
            if errors:
                raise primary_error(errors)
        finally:
            stop.set()
            # A closed consumer (downstream stopped pulling) must still
            # unblock producers waiting on a full queue.
            while retired < len(children):
                if out.get()[0] == "done":
                    retired += 1

    def _project(self, node: ProjectNode, entry: OperatorMetrics) -> Iterator[Batch]:
        positions = node.child.variable_positions()
        specs = [
            ("col", positions[value]) if kind == "var" else ("const", value)
            for kind, value in node.specs
        ]
        for batch in self._pull(node.child, entry):
            yield [
                tuple(
                    row[value] if kind == "col" else value
                    for kind, value in specs
                )
                for row in batch
            ]

    def _filter(
        self, node: NonLiteralFilterNode, entry: OperatorMetrics
    ) -> Iterator[Batch]:
        positions = node.child.variable_positions()
        guarded = [positions[variable] for variable in node.variables]
        is_literal = self.ctx.is_literal
        for batch in self._pull(node.child, entry):
            kept = [
                row
                for row in batch
                if not any(is_literal(row[index]) for index in guarded)
            ]
            if kept:
                yield kept

    def _distinct(self, node: DistinctNode, entry: OperatorMetrics) -> Iterator[Batch]:
        seen: set = set()
        for batch in self._pull(node.child, entry):
            fresh: Batch = []
            for row in batch:
                if row not in seen:
                    seen.add(row)
                    fresh.append(row)
            if fresh:
                self.metrics.buffer(entry, len(fresh))
                yield fresh

    # -- joins ---------------------------------------------------------

    def _build_table(self, rows_stream: Iterator[Batch], key_indexes,
                     entry: OperatorMetrics) -> dict:
        """Drain a build side into a hash table, counting its buffer."""
        table: dict = {}
        for batch in rows_stream:
            for row in batch:
                table.setdefault(
                    tuple(row[i] for i in key_indexes), []
                ).append(row)
            self.metrics.buffer(entry, len(batch))
        return table

    def _hash_join(self, node: JoinNode, entry: OperatorMetrics) -> Iterator[Batch]:
        left_key = [
            node.left.variable_positions()[v] for v in node.join_variables
        ]
        right_key = [
            node.right.variable_positions()[v] for v in node.join_variables
        ]
        keep = node.keep_right_indexes
        # Build on the side the cost model believes is smaller; actual
        # sizes are unknowable without materializing, which is the
        # point of not doing so.
        build_left = node.left.estimated_rows <= node.right.estimated_rows
        if build_left:
            table = self._build_table(
                self._pull(node.left, entry), left_key, entry
            )
            out: Batch = []
            for batch in self._pull(node.right, entry):
                for right in batch:
                    key = tuple(right[i] for i in right_key)
                    kept = tuple(right[i] for i in keep)
                    for left in table.get(key, ()):
                        out.append(left + kept)
                        if len(out) >= self.batch_size:
                            yield out
                            out = []
            if out:
                yield out
            return
        table = self._build_table(
            self._pull(node.right, entry), right_key, entry
        )
        out = []
        for batch in self._pull(node.left, entry):
            for left in batch:
                key = tuple(left[i] for i in left_key)
                for right in table.get(key, ()):
                    out.append(left + tuple(right[i] for i in keep))
                    if len(out) >= self.batch_size:
                        yield out
                        out = []
        if out:
            yield out

    def _drain(self, child: PlanNode, entry: OperatorMetrics) -> List[Row]:
        rows: List[Row] = []
        for batch in self._pull(child, entry):
            rows.extend(batch)
            self.metrics.buffer(entry, len(batch))
        return rows

    def _merge_join(self, node: JoinNode, entry: OperatorMetrics) -> Iterator[Batch]:
        # A genuine pipeline-breaker: both inputs must be sorted, so
        # both are buffered (and counted).  Kept for parity with the
        # MERGE_BACKEND profile; the hash path is the streaming one.
        left_key = [
            node.left.variable_positions()[v] for v in node.join_variables
        ]
        right_key = [
            node.right.variable_positions()[v] for v in node.join_variables
        ]
        keep = node.keep_right_indexes
        left_rows = sorted(
            self._drain(node.left, entry),
            key=lambda r: tuple(r[i] for i in left_key),
        )
        right_rows = sorted(
            self._drain(node.right, entry),
            key=lambda r: tuple(r[i] for i in right_key),
        )
        out: Batch = []
        li = ri = 0
        while li < len(left_rows) and ri < len(right_rows):
            lkey = tuple(left_rows[li][i] for i in left_key)
            rkey = tuple(right_rows[ri][i] for i in right_key)
            if lkey < rkey:
                li += 1
            elif lkey > rkey:
                ri += 1
            else:
                lend = li
                while lend < len(left_rows) and tuple(
                    left_rows[lend][i] for i in left_key
                ) == lkey:
                    lend += 1
                rend = ri
                while rend < len(right_rows) and tuple(
                    right_rows[rend][i] for i in right_key
                ) == rkey:
                    rend += 1
                for left in left_rows[li:lend]:
                    for right in right_rows[ri:rend]:
                        out.append(left + tuple(right[i] for i in keep))
                        if len(out) >= self.batch_size:
                            yield out
                            out = []
                li, ri = lend, rend
        if out:
            yield out

    def _nested_loop_join(
        self, node: JoinNode, entry: OperatorMetrics
    ) -> Iterator[Batch]:
        left_key = [
            node.left.variable_positions()[v] for v in node.join_variables
        ]
        right_key = [
            node.right.variable_positions()[v] for v in node.join_variables
        ]
        keep = node.keep_right_indexes
        right_rows = self._drain(node.right, entry)
        out: Batch = []
        for batch in self._pull(node.left, entry):
            for left in batch:
                lkey = tuple(left[i] for i in left_key)
                for right in right_rows:
                    if tuple(right[i] for i in right_key) == lkey:
                        out.append(left + tuple(right[i] for i in keep))
                        if len(out) >= self.batch_size:
                            yield out
                            out = []
        if out:
            yield out


# ---------------------------------------------------------------------------
# Entry points


def run_plan(
    plan: PlanNode,
    ctx,
    budget=None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    metrics: Optional[PipelineMetrics] = None,
    pool: Optional[ExecutorPool] = None,
) -> Tuple[List[Row], PipelineMetrics]:
    """Execute *plan* through the pipeline; returns (rows, metrics).

    The collected answer is distinct (answers are sets; collecting
    through a seen-set is what lets unions stream without their own
    dedup buffers).  On
    :class:`~repro.resilience.errors.BudgetExceeded` the metrics
    snapshot and the rows collected so far are attached to the raised
    error (``partial`` / ``partial_rows``) — a budget abort reports
    how far the pipeline got, it does not erase it.

    ``pool`` (optional) evaluates multi-child unions as parallel
    scans merged through a bounded queue — the answer set is identical
    (collection dedups; sets are order-free), only the wall time and
    the interleaving change.
    """
    if metrics is None:
        metrics = PipelineMetrics()
    pipeline = _Pipeline(ctx, metrics, budget, batch_size, pool=pool)
    collect = OperatorMetrics("Collect")
    started = time.perf_counter()
    if budget is not None:
        budget.start()
    seen: set = set()
    rows: List[Row] = []
    try:
        for batch in pipeline.stream(plan):
            fresh = [row for row in batch if row not in seen]
            seen.update(fresh)
            rows.extend(fresh)
            metrics.buffer(collect, len(fresh))
    except Exception as exc:
        metrics.elapsed_seconds = time.perf_counter() - started
        # Structured budget errors carry the partial execution state.
        if hasattr(exc, "diagnostics"):
            exc.partial = metrics.as_dict()
            exc.partial_rows = list(rows)
        raise
    metrics.elapsed_seconds = time.perf_counter() - started
    return rows, metrics


def run_on_store(plan, store, budget=None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 pool: Optional[ExecutorPool] = None):
    """:func:`run_plan` against a triple store (int-encoded rows)."""
    return run_plan(plan, StoreContext(store), budget=budget,
                    batch_size=batch_size, pool=pool)


def join_relations(
    left_schema: Sequence,
    left_rows: Iterable[Row],
    right_schema: Sequence,
    right_rows: Iterable[Row],
    budget=None,
    algorithm: str = "hash",
) -> Tuple[tuple, set]:
    """Join two in-memory relations on their shared variables.

    The one join kernel every evaluation path shares: the reference
    evaluator's JUCQ combination and the federation client's local
    joins both compile to a :class:`~repro.engine.ir.JoinNode` over
    :class:`~repro.engine.ir.RelationNode` leaves and run through the
    pipeline.  A relation's schema is its fragment head: variables
    name columns (repeats allowed), constants are payload.  The output
    schema is the left schema followed by the right columns whose
    variables are not already present on the left.

    ``budget`` meters the join's *output* per batch (the inputs were
    charged by whoever materialized them), so a Cartesian blowup
    raises :class:`~repro.resilience.errors.BudgetExceeded` instead of
    materializing.
    """
    from ..query.algebra import Variable

    def labels(schema) -> List[ColumnLabel]:
        return [item if isinstance(item, Variable) else None for item in schema]

    left = RelationNode(labels(left_schema), list(left_rows), charged=True)
    right = RelationNode(labels(right_schema), list(right_rows), charged=True)
    node = JoinNode(left, right, algorithm)
    rows, _ = run_plan(node, RelationContext(), budget=budget)
    output_schema = tuple(left_schema) + tuple(
        right_schema[index] for index in node.keep_right_indexes
    )
    return output_schema, set(rows)
