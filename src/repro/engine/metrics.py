"""Per-operator execution metrics for the pipelined engine.

The paper's whole argument is about *intermediate result sizes*
(Example 1: 33M rows for the open type atoms vs 2,296 after grouping).
The materialized interpreter exposes that as each node's
``actual_rows``; the pipelined executor streams instead of
materializing, so the interesting quantity becomes what each operator
*buffers* — hash-join build tables, sort buffers, dedup sets — and the
global peak of all concurrent buffers, the engine's true memory high-
water mark.  :class:`PipelineMetrics` records both, per operator:

======================  ==============================================
``rows_in``             rows pulled from the operator's inputs
``rows_out``            rows the operator emitted downstream
``batches``             batches emitted (the pipeline's unit of work)
``peak_buffered_rows``  rows this operator held at once (its state)
``wall_seconds``        inclusive time producing this operator's output
======================  ==============================================

In-flight batches are not counted as buffered: they are bounded by
``batch_size`` × pipeline depth by construction.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from .ir import PlanNode


class OperatorMetrics:
    """One operator's accounting across a single pipelined run."""

    def __init__(self, label: str):
        self.label = label
        self.rows_in = 0
        self.rows_out = 0
        self.batches = 0
        self.buffered_rows = 0
        self.peak_buffered_rows = 0
        self.wall_seconds = 0.0

    def as_dict(self) -> Dict:
        return {
            "operator": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "batches": self.batches,
            "peak_buffered_rows": self.peak_buffered_rows,
            "wall_seconds": self.wall_seconds,
        }

    def __repr__(self) -> str:
        return "OperatorMetrics(%s, out=%d, peak=%d)" % (
            self.label,
            self.rows_out,
            self.peak_buffered_rows,
        )


class PipelineMetrics:
    """The metrics of one pipelined execution, preorder per operator.

    Also tracks the *global* buffered-row high-water mark across all
    concurrently live operator buffers (plus the collected result),
    the number the differential harness compares against the
    materialized engine's largest operator output.

    Thread-safe: a parallel union drives each child subtree from its
    own pool worker, so entry creation and the shared buffered-row
    totals are updated under a lock.  (A single entry's ``rows_in`` /
    ``rows_out`` counters stay lock-free — each operator is driven by
    exactly one thread.)
    """

    def __init__(self):
        self._per_node: Dict[int, OperatorMetrics] = {}
        self._order: List[OperatorMetrics] = []
        self._buffered_total = 0
        self.peak_buffered_rows = 0
        self.started_at: Optional[float] = None
        self.elapsed_seconds = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def operator(self, node: PlanNode) -> OperatorMetrics:
        """The (lazily created) metrics entry for *node*."""
        key = id(node)
        with self._lock:
            entry = self._per_node.get(key)
            if entry is None:
                entry = OperatorMetrics(repr(node))
                self._per_node[key] = entry
                self._order.append(entry)
            return entry

    def buffer(self, entry: OperatorMetrics, rows: int) -> None:
        """Record *rows* newly held in *entry*'s operator state."""
        with self._lock:
            entry.buffered_rows += rows
            if entry.buffered_rows > entry.peak_buffered_rows:
                entry.peak_buffered_rows = entry.buffered_rows
            self._buffered_total += rows
            if self._buffered_total > self.peak_buffered_rows:
                self.peak_buffered_rows = self._buffered_total

    def release(self, entry: OperatorMetrics) -> None:
        """An operator's state was dropped (stream closed/exhausted)."""
        with self._lock:
            self._buffered_total -= entry.buffered_rows
            entry.buffered_rows = 0

    # ------------------------------------------------------------------

    def per_operator(self) -> List[OperatorMetrics]:
        """Entries in the order operators first produced output."""
        return list(self._order)

    def total_rows_out(self) -> int:
        return sum(entry.rows_out for entry in self._order)

    def as_dict(self) -> Dict:
        return {
            "peak_buffered_rows": self.peak_buffered_rows,
            "elapsed_seconds": self.elapsed_seconds,
            "operators": [entry.as_dict() for entry in self._order],
        }

    def table_rows(self) -> List[List]:
        """Rows for the CLI's per-operator metric table."""
        return [
            [
                entry.label,
                entry.rows_in,
                entry.rows_out,
                entry.batches,
                entry.peak_buffered_rows,
                "%.2f" % (entry.wall_seconds * 1e3),
            ]
            for entry in self._order
        ]

    def __repr__(self) -> str:
        return "PipelineMetrics(%d operators, peak_buffered=%d)" % (
            len(self._order),
            self.peak_buffered_rows,
        )


class _Stopwatch:
    """Attribute wall time to one operator around each batch pull."""

    def __init__(self, entry: OperatorMetrics):
        self.entry = entry
        self._started = 0.0

    def __enter__(self) -> "_Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.entry.wall_seconds += time.perf_counter() - self._started
