"""A synthetic DBLP-style bibliographic dataset.

DBLP is the third real dataset the demo mentions.  This generator
reproduces its shape: publications of several kinds (journal articles,
conference papers, books, theses) authored by a Zipf-skewed author
population, published in venues, with a contribution-property
hierarchy (``authorOf``/``editorOf`` ⊑ ``contributorOf``) that gives
subproperty reasoning real work.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..query.algebra import ConjunctiveQuery, TriplePattern, Variable
from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF_TYPE
from ..rdf.terms import Literal
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema

#: The synthetic bibliography vocabulary.
BIB = Namespace("http://example.org/bib/")


def bib_schema() -> Schema:
    sc = Constraint.subclass
    sp = Constraint.subproperty
    dom = Constraint.domain
    rng = Constraint.range
    return Schema(
        [
            sc(BIB.Article, BIB.Publication),
            sc(BIB.JournalArticle, BIB.Article),
            sc(BIB.ConferencePaper, BIB.Article),
            sc(BIB.Book, BIB.Publication),
            sc(BIB.PhdThesis, BIB.Publication),
            sc(BIB.Journal, BIB.Venue),
            sc(BIB.Conference, BIB.Venue),
            sp(BIB.authorOf, BIB.contributorOf),
            sp(BIB.editorOf, BIB.contributorOf),
            dom(BIB.contributorOf, BIB.Person),
            rng(BIB.contributorOf, BIB.Publication),
            dom(BIB.publishedIn, BIB.Publication),
            rng(BIB.publishedIn, BIB.Venue),
            dom(BIB.title, BIB.Publication),
            dom(BIB.year, BIB.Publication),
            dom(BIB.personName, BIB.Person),
        ]
    )


def _zipf_choice(rng: random.Random, population: List, exponent: float = 1.1):
    """A Zipf-skewed draw: a few authors write most papers (as in DBLP)."""
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(population))]
    return rng.choices(population, weights=weights, k=1)[0]


def generate_bib(
    authors: int = 200,
    publications: int = 800,
    venues: int = 25,
    seed: int = 11,
    include_schema: bool = True,
) -> Graph:
    """Generate a bibliographic graph.

    >>> len(generate_bib(authors=5, publications=10, venues=2)) > 30
    True
    """
    rng = random.Random(seed)
    graph = Graph()
    if include_schema:
        graph.add_all(bib_schema().to_triples())

    author_uris = [BIB.term("person/%d" % index) for index in range(authors)]
    for index, author in enumerate(author_uris):
        graph.add(Triple(author, BIB.personName, Literal("Author %d" % index)))

    venue_uris = []
    for index in range(venues):
        kind = BIB.Journal if index % 2 == 0 else BIB.Conference
        venue = BIB.term("venue/%d" % index)
        venue_uris.append((venue, kind))
        graph.add(Triple(venue, RDF_TYPE, kind))

    kinds = (BIB.JournalArticle, BIB.ConferencePaper, BIB.Book, BIB.PhdThesis)
    for index in range(publications):
        publication = BIB.term("pub/%d" % index)
        kind = kinds[rng.randrange(len(kinds))]
        graph.add(Triple(publication, RDF_TYPE, kind))
        graph.add(Triple(publication, BIB.title, Literal("Title %d" % index)))
        graph.add(
            Triple(publication, BIB.year, Literal(str(1990 + rng.randrange(30))))
        )
        # 1-4 authors, Zipf-skewed.
        for _ in range(1 + rng.randrange(4)):
            author = _zipf_choice(rng, author_uris)
            graph.add(Triple(author, BIB.authorOf, publication))
        if kind == BIB.Book and rng.random() < 0.5:
            graph.add(
                Triple(_zipf_choice(rng, author_uris), BIB.editorOf, publication)
            )
        if kind in (BIB.JournalArticle, BIB.ConferencePaper) and venue_uris:
            venue, _ = venue_uris[rng.randrange(len(venue_uris))]
            graph.add(Triple(publication, BIB.publishedIn, venue))
    return graph


def bib_queries() -> Dict[str, ConjunctiveQuery]:
    """Representative bibliographic queries."""
    x, y, z, t = Variable("x"), Variable("y"), Variable("z"), Variable("t")
    return {
        # All contributors of publications (subproperty reasoning).
        "B1": ConjunctiveQuery(
            [x, y], [TriplePattern(x, BIB.contributorOf, y)]
        ),
        # Persons (via domain reasoning) with their names.
        "B2": ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, BIB.Person),
                TriplePattern(x, BIB.personName, y),
            ],
        ),
        # Articles with venue and a contributor.
        "B3": ConjunctiveQuery(
            [x, y, z],
            [
                TriplePattern(x, RDF_TYPE, BIB.Article),
                TriplePattern(x, BIB.publishedIn, y),
                TriplePattern(z, BIB.contributorOf, x),
            ],
        ),
        # Openly-typed things connected to venues.
        "B4": ConjunctiveQuery(
            [x, t],
            [
                TriplePattern(x, RDF_TYPE, t),
                TriplePattern(x, BIB.publishedIn, y),
            ],
        ),
    }
