"""The LUBM query workload, plus the paper's Example 1 query.

LUBM ships fourteen benchmark queries; we restate the ones expressible
in the conjunctive SPARQL dialect of the paper (all fourteen are BGPs;
a few relied on OWL-only inference — ``Q12``'s transitive
``subOrganizationOf`` chain, for instance — and are stated here in
their RDFS-answerable form, as the paper's systems would).  Each query
is a plain :class:`~repro.query.algebra.ConjunctiveQuery` over the
:data:`~repro.datasets.lubm.UB` vocabulary, so every strategy in the
library can answer it.

The star of the show is :func:`example1_query` — Section 4's

    q(x, u, y, v, z) :- x rdf:type u, y rdf:type v,
                        x ub:mastersDegreeFrom U,
                        y ub:doctoralDegreeFrom U,
                        x ub:memberOf z, y ub:memberOf z

whose UCQ reformulation explodes (318,096 CQs on the authors' LUBM
schema), whose SCQ drowns in intermediate results, and whose best
cover ``{{t1,t3},{t3,t5},{t2,t4},{t4,t6}}`` runs 430× faster.
:func:`example1_best_cover` builds exactly that cover.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..query.algebra import ConjunctiveQuery, TriplePattern, Variable
from ..query.cover import Cover
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import URI
from .lubm import UB, university_uri


def _v(name: str) -> Variable:
    return Variable(name)


def example1_query(university: Optional[URI] = None) -> ConjunctiveQuery:
    """The six-atom query of the paper's Example 1.

    *university* defaults to a well-represented member of the
    generator's Zipf-skewed degree pool (the paper used
    ``http://www.Univ532.edu`` on the 100M-triple LUBM; any pool
    university exercises the same joins).
    """
    if university is None:
        university = university_uri(1)
    x, u, y, v, z = _v("x"), _v("u"), _v("y"), _v("v"), _v("z")
    return ConjunctiveQuery(
        [x, u, y, v, z],
        [
            TriplePattern(x, RDF_TYPE, u),                      # t1
            TriplePattern(y, RDF_TYPE, v),                      # t2
            TriplePattern(x, UB.mastersDegreeFrom, university),  # t3
            TriplePattern(y, UB.doctoralDegreeFrom, university), # t4
            TriplePattern(x, UB.memberOf, z),                   # t5
            TriplePattern(y, UB.memberOf, z),                   # t6
        ],
    )


def example1_best_cover(query: Optional[ConjunctiveQuery] = None) -> Cover:
    """The paper's fastest cover: ``{{t1,t3},{t3,t5},{t2,t4},{t4,t6}}``
    (0-based fragments {0,2},{2,4},{1,3},{3,5})."""
    if query is None:
        query = example1_query()
    return Cover(query, [[0, 2], [2, 4], [1, 3], [3, 5]])


def lubm_queries(university: Optional[URI] = None) -> Dict[str, ConjunctiveQuery]:
    """The fourteen LUBM queries (RDFS-answerable form).

    Queries that reference a specific university/department use the
    generator's first university unless *university* is given.
    """
    if university is None:
        university = university_uri(0)
    department = URI("http://www.Department0.University0.edu")
    x, y, z = _v("x"), _v("y"), _v("z")

    queries: Dict[str, ConjunctiveQuery] = {}

    # Q1: graduate students taking a specific graduate course.
    course = URI("http://www.Department0.University0.edu/GraduateCourse0")
    queries["Q1"] = ConjunctiveQuery(
        [x],
        [
            TriplePattern(x, RDF_TYPE, UB.GraduateStudent),
            TriplePattern(x, UB.takesCourse, course),
        ],
    )

    # Q2: graduate students with a degree from the university whose
    # department they are members of.
    queries["Q2"] = ConjunctiveQuery(
        [x, y, z],
        [
            TriplePattern(x, RDF_TYPE, UB.GraduateStudent),
            TriplePattern(y, RDF_TYPE, UB.University),
            TriplePattern(z, RDF_TYPE, UB.Department),
            TriplePattern(x, UB.memberOf, z),
            TriplePattern(z, UB.subOrganizationOf, y),
            TriplePattern(x, UB.undergraduateDegreeFrom, y),
        ],
    )

    # Q3: publications of a known assistant professor.
    author = URI("http://www.Department0.University0.edu/AssistantProfessor0")
    queries["Q3"] = ConjunctiveQuery(
        [x],
        [
            TriplePattern(x, RDF_TYPE, UB.Publication),
            TriplePattern(x, UB.publicationAuthor, author),
        ],
    )

    # Q4: professors working for a department, with contact details.
    w1, w2, w3 = _v("name"), _v("email"), _v("phone")
    queries["Q4"] = ConjunctiveQuery(
        [x, w1, w2, w3],
        [
            TriplePattern(x, RDF_TYPE, UB.Professor),
            TriplePattern(x, UB.worksFor, department),
            TriplePattern(x, UB.name, w1),
            TriplePattern(x, UB.emailAddress, w2),
            TriplePattern(x, UB.researchInterest, w3),
        ],
    )

    # Q5: persons who are members of a department.
    queries["Q5"] = ConjunctiveQuery(
        [x],
        [
            TriplePattern(x, RDF_TYPE, UB.Person),
            TriplePattern(x, UB.memberOf, department),
        ],
    )

    # Q6: all students.
    queries["Q6"] = ConjunctiveQuery(
        [x], [TriplePattern(x, RDF_TYPE, UB.Student)]
    )

    # Q7: students taking a course taught by a known professor.
    professor = URI("http://www.Department0.University0.edu/FullProfessor0")
    queries["Q7"] = ConjunctiveQuery(
        [x, y],
        [
            TriplePattern(x, RDF_TYPE, UB.Student),
            TriplePattern(y, RDF_TYPE, UB.Course),
            TriplePattern(x, UB.takesCourse, y),
            TriplePattern(professor, UB.teacherOf, y),
        ],
    )

    # Q8: students who are members of a department of a university,
    # with their email.
    email = _v("email")
    queries["Q8"] = ConjunctiveQuery(
        [x, y, email],
        [
            TriplePattern(x, RDF_TYPE, UB.Student),
            TriplePattern(y, RDF_TYPE, UB.Department),
            TriplePattern(x, UB.memberOf, y),
            TriplePattern(y, UB.subOrganizationOf, university),
            TriplePattern(x, UB.emailAddress, email),
        ],
    )

    # Q9: the student–faculty–course triangle.
    queries["Q9"] = ConjunctiveQuery(
        [x, y, z],
        [
            TriplePattern(x, RDF_TYPE, UB.Student),
            TriplePattern(y, RDF_TYPE, UB.Faculty),
            TriplePattern(z, RDF_TYPE, UB.Course),
            TriplePattern(x, UB.advisor, y),
            TriplePattern(y, UB.teacherOf, z),
            TriplePattern(x, UB.takesCourse, z),
        ],
    )

    # Q10: students taking a specific graduate course.
    queries["Q10"] = ConjunctiveQuery(
        [x],
        [
            TriplePattern(x, RDF_TYPE, UB.Student),
            TriplePattern(x, UB.takesCourse, course),
        ],
    )

    # Q11: research groups of a university.
    queries["Q11"] = ConjunctiveQuery(
        [x],
        [
            TriplePattern(x, RDF_TYPE, UB.ResearchGroup),
            TriplePattern(x, UB.subOrganizationOf, _v("d")),
            TriplePattern(_v("d"), UB.subOrganizationOf, university),
        ],
    )

    # Q12: department heads (LUBM asks for Chairs; RDFS derives
    # headship from the headOf property).
    queries["Q12"] = ConjunctiveQuery(
        [x, y],
        [
            TriplePattern(x, RDF_TYPE, UB.Professor),
            TriplePattern(y, RDF_TYPE, UB.Department),
            TriplePattern(x, UB.headOf, y),
            TriplePattern(y, UB.subOrganizationOf, university),
        ],
    )

    # Q13: alumni — persons with any degree from the university.
    queries["Q13"] = ConjunctiveQuery(
        [x],
        [
            TriplePattern(x, RDF_TYPE, UB.Person),
            TriplePattern(x, UB.degreeFrom, university),
        ],
    )

    # Q14: all undergraduate students (the no-reasoning baseline).
    queries["Q14"] = ConjunctiveQuery(
        [x], [TriplePattern(x, RDF_TYPE, UB.UndergraduateStudent)]
    )

    return queries


def query_list(university: Optional[URI] = None) -> List[ConjunctiveQuery]:
    """The workload in a stable order: Q1…Q14 then Example 1."""
    queries = lubm_queries(university)
    ordered = [queries["Q%d" % index] for index in range(1, 15)]
    ordered.append(example1_query())
    return ordered
