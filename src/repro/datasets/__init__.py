"""Datasets and workloads: the running example, LUBM-style, INSEE-like
and DBLP-like generators (S10)."""

from .books import BOOKS, books_dataset, books_example_query, books_graph, books_schema
from .dblp_like import BIB, bib_queries, bib_schema, generate_bib
from .insee_like import GEO, generate_geo, geo_queries, geo_schema
from .lubm import (
    GeneratorConfig,
    LubmGenerator,
    UB,
    generate_lubm,
    lubm_schema,
    university_uri,
)
from .lubm_queries import (
    example1_best_cover,
    example1_query,
    lubm_queries,
    query_list,
)

__all__ = [
    "BIB",
    "BOOKS",
    "GEO",
    "GeneratorConfig",
    "LubmGenerator",
    "UB",
    "bib_queries",
    "bib_schema",
    "books_dataset",
    "books_example_query",
    "books_graph",
    "books_schema",
    "example1_best_cover",
    "example1_query",
    "generate_bib",
    "generate_geo",
    "generate_lubm",
    "geo_queries",
    "geo_schema",
    "lubm_queries",
    "lubm_schema",
    "query_list",
    "university_uri",
]
