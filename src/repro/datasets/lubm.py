"""A LUBM-style ontology and scalable data generator.

The paper's quantitative example runs on "the 100 million triples LUBM
[11] dataset" with queries over ``ub:mastersDegreeFrom``,
``ub:doctoralDegreeFrom`` and ``ub:memberOf``.  This module rebuilds
the RDFS projection of the univ-bench ontology — the class and property
hierarchies, domains and ranges that drive reformulation sizes — and a
seeded generator producing university data with LUBM's shape
(departments per university, faculty per department, students per
faculty, publications per faculty, degree links to a pool of
universities).

Deliberate fidelity points:

* instances carry only their **most specific** type (raw LUBM data does
  too) — making entailment genuinely necessary, which is the premise of
  every experiment;
* open type atoms (``x rdf:type u``) reformulate into hundreds of
  atomic queries against this schema, reproducing the blow-up of
  Example 1 (their 564 per atom; the exact count here depends on this
  RDFS projection and is reported by experiment E1);
* degree properties link people to universities from a shared pool, so
  Example 1's constant ``http://www.Univ532.edu`` has the same join
  behaviour as in the paper.

Scale: ``GeneratorConfig`` defaults produce ≈2k triples per university
— laptop-scale, per DESIGN.md's substitution table; scale up through
``universities=`` and a larger ``GeneratorConfig``.  Ratios between
entity populations follow LUBM, which is what the runtime *shapes*
depend on.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF_TYPE
from ..rdf.terms import Literal, URI
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema

#: The univ-bench namespace (as in the paper's queries).
UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")


def lubm_schema() -> Schema:
    """The RDFS projection of the univ-bench ontology.

    Classes and properties match univ-bench; OWL-only axioms
    (inverses, transitivity, intersections) are dropped, and the
    handful of class memberships LUBM defines through OWL restrictions
    (e.g. GraduateStudent) are approximated by subclass links, which
    preserves the hierarchy shape reformulation depends on.
    """
    sc = Constraint.subclass
    sp = Constraint.subproperty
    dom = Constraint.domain
    rng = Constraint.range
    constraints = [
        # --- Organizations
        sc(UB.University, UB.Organization),
        sc(UB.Department, UB.Organization),
        sc(UB.Institute, UB.Organization),
        sc(UB.Program, UB.Organization),
        sc(UB.ResearchGroup, UB.Organization),
        # --- People
        sc(UB.Employee, UB.Person),
        sc(UB.Faculty, UB.Employee),
        sc(UB.Professor, UB.Faculty),
        sc(UB.FullProfessor, UB.Professor),
        sc(UB.AssociateProfessor, UB.Professor),
        sc(UB.AssistantProfessor, UB.Professor),
        sc(UB.VisitingProfessor, UB.Professor),
        sc(UB.Chair, UB.Professor),
        sc(UB.Dean, UB.Professor),
        sc(UB.Lecturer, UB.Faculty),
        sc(UB.PostDoc, UB.Faculty),
        sc(UB.AdministrativeStaff, UB.Employee),
        sc(UB.ClericalStaff, UB.AdministrativeStaff),
        sc(UB.SystemsStaff, UB.AdministrativeStaff),
        sc(UB.Student, UB.Person),
        sc(UB.UndergraduateStudent, UB.Student),
        sc(UB.GraduateStudent, UB.Student),
        sc(UB.TeachingAssistant, UB.GraduateStudent),
        sc(UB.ResearchAssistant, UB.GraduateStudent),
        sc(UB.Director, UB.Person),
        # --- Works
        sc(UB.Course, UB.Work),
        sc(UB.GraduateCourse, UB.Course),
        sc(UB.Research, UB.Work),
        sc(UB.Publication, UB.Work),
        sc(UB.Article, UB.Publication),
        sc(UB.ConferencePaper, UB.Article),
        sc(UB.JournalArticle, UB.Article),
        sc(UB.TechnicalReport, UB.Article),
        sc(UB.Book, UB.Publication),
        sc(UB.Manual, UB.Publication),
        sc(UB.Software, UB.Publication),
        sc(UB.Specification, UB.Publication),
        sc(UB.UnofficialPublication, UB.Publication),
        # --- Property hierarchy
        sp(UB.headOf, UB.worksFor),
        sp(UB.worksFor, UB.memberOf),
        sp(UB.undergraduateDegreeFrom, UB.degreeFrom),
        sp(UB.mastersDegreeFrom, UB.degreeFrom),
        sp(UB.doctoralDegreeFrom, UB.degreeFrom),
        # --- Domains and ranges
        dom(UB.memberOf, UB.Person), rng(UB.memberOf, UB.Organization),
        dom(UB.worksFor, UB.Employee),
        dom(UB.headOf, UB.Employee),
        dom(UB.degreeFrom, UB.Person), rng(UB.degreeFrom, UB.University),
        dom(UB.mastersDegreeFrom, UB.Person),
        dom(UB.doctoralDegreeFrom, UB.Person),
        dom(UB.undergraduateDegreeFrom, UB.Person),
        dom(UB.takesCourse, UB.Student), rng(UB.takesCourse, UB.Course),
        dom(UB.teacherOf, UB.Faculty), rng(UB.teacherOf, UB.Course),
        dom(UB.teachingAssistantOf, UB.TeachingAssistant),
        rng(UB.teachingAssistantOf, UB.Course),
        dom(UB.advisor, UB.Person), rng(UB.advisor, UB.Professor),
        dom(UB.publicationAuthor, UB.Publication),
        rng(UB.publicationAuthor, UB.Person),
        dom(UB.subOrganizationOf, UB.Organization),
        rng(UB.subOrganizationOf, UB.Organization),
        dom(UB.orgPublication, UB.Organization),
        rng(UB.orgPublication, UB.Publication),
        dom(UB.researchProject, UB.ResearchGroup),
        rng(UB.researchProject, UB.Research),
        dom(UB.name, UB.Person),
        dom(UB.emailAddress, UB.Person),
        dom(UB.telephone, UB.Person),
        dom(UB.researchInterest, UB.Person),
    ]
    return Schema(constraints)


class GeneratorConfig:
    """Population sizes per university; ratios follow LUBM."""

    def __init__(
        self,
        departments: int = 4,
        full_professors: int = 2,
        associate_professors: int = 3,
        assistant_professors: int = 3,
        lecturers: int = 2,
        undergraduate_students: int = 40,
        graduate_students: int = 12,
        courses: int = 12,
        graduate_courses: int = 6,
        research_groups: int = 3,
        publications_per_faculty: int = 3,
        external_university_pool: int = 20,
    ):
        self.departments = departments
        self.full_professors = full_professors
        self.associate_professors = associate_professors
        self.assistant_professors = assistant_professors
        self.lecturers = lecturers
        self.undergraduate_students = undergraduate_students
        self.graduate_students = graduate_students
        self.courses = courses
        self.graduate_courses = graduate_courses
        self.research_groups = research_groups
        self.publications_per_faculty = publications_per_faculty
        self.external_university_pool = external_university_pool


def university_uri(index: int) -> URI:
    """The URI of university *index* — Example 1's constant is
    ``university_uri(532)``."""
    return URI("http://www.Univ%d.edu" % index)


class LubmGenerator:
    """Seeded LUBM-style data generator.

    >>> graph = LubmGenerator(seed=0).generate(universities=1)
    >>> len(graph) > 1000
    True
    """

    def __init__(self, config: Optional[GeneratorConfig] = None, seed: int = 42):
        self.config = config or GeneratorConfig()
        self.seed = seed

    # ------------------------------------------------------------------

    def generate(self, universities: int = 1, include_schema: bool = True) -> Graph:
        """Generate data for *universities* universities.

        When ``include_schema`` is set the schema triples are embedded
        in the returned graph (the usual single-graph layout); pass
        False to keep data and constraints separate.
        """
        rng = random.Random(self.seed)
        graph = Graph()
        if include_schema:
            graph.add_all(lubm_schema().to_triples())
        pool = [
            university_uri(index)
            for index in range(self.config.external_university_pool)
        ]
        for index in range(universities):
            self._university(graph, rng, index, pool)
        return graph

    @staticmethod
    def _pick_university(rng: random.Random, pool: List[URI]) -> URI:
        """Zipf-skewed draw from the degree pool: a few universities
        graduate most people, so degree joins (Example 1's t3 ⋈ t4)
        have matches at laptop scale just as they do at LUBM's."""
        weights = [1.0 / (rank + 1) for rank in range(len(pool))]
        return rng.choices(pool, weights=weights, k=1)[0]

    # ------------------------------------------------------------------

    def _university(
        self, graph: Graph, rng: random.Random, index: int, pool: List[URI]
    ) -> None:
        config = self.config
        university = university_uri(index)
        graph.add(Triple(university, RDF_TYPE, UB.University))
        for dept_index in range(config.departments):
            self._department(graph, rng, university, index, dept_index, pool)

    def _department(
        self,
        graph: Graph,
        rng: random.Random,
        university: URI,
        uni_index: int,
        dept_index: int,
        pool: List[URI],
    ) -> None:
        config = self.config
        base = "http://www.Department%d.University%d.edu/" % (dept_index, uni_index)
        ns = Namespace(base)
        department = URI(base.rstrip("/"))
        graph.add(Triple(department, RDF_TYPE, UB.Department))
        graph.add(Triple(department, UB.subOrganizationOf, university))

        courses = [ns.term("Course%d" % i) for i in range(config.courses)]
        graduate_courses = [
            ns.term("GraduateCourse%d" % i) for i in range(config.graduate_courses)
        ]
        for course in courses:
            graph.add(Triple(course, RDF_TYPE, UB.Course))
        for course in graduate_courses:
            graph.add(Triple(course, RDF_TYPE, UB.GraduateCourse))

        groups = [ns.term("ResearchGroup%d" % i) for i in range(config.research_groups)]
        for group in groups:
            graph.add(Triple(group, RDF_TYPE, UB.ResearchGroup))
            graph.add(Triple(group, UB.subOrganizationOf, department))

        faculty: List[Tuple[URI, URI]] = []
        for kind, count in (
            (UB.FullProfessor, config.full_professors),
            (UB.AssociateProfessor, config.associate_professors),
            (UB.AssistantProfessor, config.assistant_professors),
            (UB.Lecturer, config.lecturers),
        ):
            for person_index in range(count):
                person = ns.term("%s%d" % (kind.local_name(), person_index))
                faculty.append((person, kind))

        all_courses = courses + graduate_courses
        professors = [
            person for person, kind in faculty if kind != UB.Lecturer
        ]
        for person, kind in faculty:
            graph.add(Triple(person, RDF_TYPE, kind))
            graph.add(Triple(person, UB.worksFor, department))
            graph.add(
                Triple(person, UB.name, Literal("%s" % person.local_name()))
            )
            graph.add(
                Triple(
                    person,
                    UB.emailAddress,
                    Literal("%s@%s" % (person.local_name(), university.local_name())),
                )
            )
            graph.add(
                Triple(
                    person,
                    UB.researchInterest,
                    Literal("Research%d" % rng.randrange(30)),
                )
            )
            for course in rng.sample(all_courses, k=min(2, len(all_courses))):
                graph.add(Triple(person, UB.teacherOf, course))
            if kind != UB.Lecturer:
                graph.add(
                    Triple(
                        person,
                        UB.undergraduateDegreeFrom,
                        self._pick_university(rng, pool),
                    )
                )
                graph.add(
                    Triple(
                        person, UB.mastersDegreeFrom, self._pick_university(rng, pool)
                    )
                )
                graph.add(
                    Triple(
                        person, UB.doctoralDegreeFrom, self._pick_university(rng, pool)
                    )
                )

        # The department head: one full professor.
        head = faculty[0][0]
        graph.add(Triple(head, UB.headOf, department))

        publication_index = 0
        for person, _ in faculty:
            for _ in range(config.publications_per_faculty):
                publication = ns.term("Publication%d" % publication_index)
                publication_index += 1
                kind = rng.choice(
                    (UB.JournalArticle, UB.ConferencePaper, UB.TechnicalReport,
                     UB.Book)
                )
                graph.add(Triple(publication, RDF_TYPE, kind))
                graph.add(Triple(publication, UB.publicationAuthor, person))

        for student_index in range(config.undergraduate_students):
            student = ns.term("UndergraduateStudent%d" % student_index)
            graph.add(Triple(student, RDF_TYPE, UB.UndergraduateStudent))
            graph.add(Triple(student, UB.memberOf, department))
            for course in rng.sample(courses, k=min(3, len(courses))):
                graph.add(Triple(student, UB.takesCourse, course))

        for student_index in range(config.graduate_students):
            student = ns.term("GraduateStudent%d" % student_index)
            # A slice of graduate students are assistants (most
            # specific type only, per LUBM).
            draw = rng.random()
            if draw < 0.2:
                student_type = UB.TeachingAssistant
            elif draw < 0.35:
                student_type = UB.ResearchAssistant
            else:
                student_type = UB.GraduateStudent
            graph.add(Triple(student, RDF_TYPE, student_type))
            graph.add(Triple(student, UB.memberOf, department))
            graph.add(
                Triple(
                    student,
                    UB.undergraduateDegreeFrom,
                    self._pick_university(rng, pool),
                )
            )
            # Some graduate students already hold a masters degree and
            # some department members obtained their doctorate locally,
            # giving Example 1's join real matches.
            if rng.random() < 0.5:
                graph.add(
                    Triple(
                        student,
                        UB.mastersDegreeFrom,
                        self._pick_university(rng, pool),
                    )
                )
            if professors:
                graph.add(Triple(student, UB.advisor, rng.choice(professors)))
            for course in rng.sample(
                graduate_courses, k=min(2, len(graduate_courses))
            ):
                graph.add(Triple(student, UB.takesCourse, course))
            if student_type == UB.TeachingAssistant and courses:
                graph.add(Triple(student, UB.teachingAssistantOf, rng.choice(courses)))


def generate_lubm(
    universities: int = 1,
    seed: int = 42,
    config: Optional[GeneratorConfig] = None,
    include_schema: bool = True,
) -> Graph:
    """Convenience wrapper: a seeded LUBM-style graph."""
    return LubmGenerator(config, seed).generate(universities, include_schema)
