"""The paper's running example: the bibliographic graph of Figure 2.

A book ``doi1`` with its author (a blank node), title and publication
date, under four constraints: books are publications, writing
something means being an author, and ``writtenBy`` relates books to
people.  The implicit triples (dashed edges in Figure 2) — e.g.
``doi1 rdf:type Publication`` and ``doi1 hasAuthor _:b1`` — exist only
after entailment, which is exactly what every engine in this library
must recover.
"""

from __future__ import annotations

from typing import Tuple

from ..query.algebra import ConjunctiveQuery, TriplePattern, Variable
from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF_TYPE
from ..rdf.terms import BlankNode, Literal
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema

#: The example's vocabulary namespace.
BOOKS = Namespace("http://example.org/books/")


def books_schema() -> Schema:
    """The four constraints of the running example."""
    return Schema(
        [
            Constraint.subclass(BOOKS.Book, BOOKS.Publication),
            Constraint.subproperty(BOOKS.writtenBy, BOOKS.hasAuthor),
            Constraint.domain(BOOKS.writtenBy, BOOKS.Book),
            Constraint.range(BOOKS.writtenBy, BOOKS.Person),
        ]
    )


def books_graph(include_schema: bool = True) -> Graph:
    """The explicit triples of Figure 2 (data, plus the constraints
    unless ``include_schema`` is False)."""
    b1 = BlankNode("b1")
    graph = Graph(
        [
            Triple(BOOKS.doi1, RDF_TYPE, BOOKS.Book),
            Triple(BOOKS.doi1, BOOKS.writtenBy, b1),
            Triple(BOOKS.doi1, BOOKS.hasTitle, Literal("El Aleph")),
            Triple(b1, BOOKS.hasName, Literal("J. L. Borges")),
            Triple(BOOKS.doi1, BOOKS.publishedIn, Literal("1949")),
        ]
    )
    if include_schema:
        graph.add_all(books_schema().to_triples())
    return graph


def books_example_query() -> ConjunctiveQuery:
    """Section 3's query: "the names of authors of books somehow
    connected to the literal 1949":

        q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 x4 "1949"

    Its complete answer on Figure 2 is ``{("J. L. Borges",)}`` — and
    the empty set without entailment.
    """
    x1, x2, x3, x4 = (Variable("x%d" % index) for index in range(1, 5))
    return ConjunctiveQuery(
        [x3],
        [
            TriplePattern(x1, BOOKS.hasAuthor, x2),
            TriplePattern(x2, BOOKS.hasName, x3),
            TriplePattern(x1, x4, Literal("1949")),
        ],
    )


def books_dataset() -> Tuple[Graph, Schema, ConjunctiveQuery]:
    """(graph, schema, query) — the full running example in one call."""
    return books_graph(), books_schema(), books_example_query()
