"""A synthetic French-statistics-style dataset (INSEE/IGN stand-in).

The demo lists "French statistical (INSEE) and geographical (IGN)
data" among its scenarios.  Those dumps are not redistributable here,
so this generator produces data with the same *shape* (which is what
drives subquery costs — see DESIGN.md's substitution table):

* a three-level administrative hierarchy — communes within
  départements within régions — as a class hierarchy
  (``Commune ⊑ Municipality ⊑ AdministrativeArea`` …) plus
  ``locatedIn`` subproperties;
* statistical observations attached to areas: population, households,
  unemployment measures, each a subproperty of ``hasMeasure`` with
  domain/range constraints;
* heavy skew: many communes, few régions — the distribution the cost
  model must see through.
"""

from __future__ import annotations

import random
from typing import Dict

from ..query.algebra import ConjunctiveQuery, TriplePattern, Variable
from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF_TYPE
from ..rdf.terms import Literal
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema

#: The synthetic statistics vocabulary.
GEO = Namespace("http://example.org/geo/")


def geo_schema() -> Schema:
    sc = Constraint.subclass
    sp = Constraint.subproperty
    dom = Constraint.domain
    rng = Constraint.range
    return Schema(
        [
            sc(GEO.Region, GEO.AdministrativeArea),
            sc(GEO.Departement, GEO.AdministrativeArea),
            sc(GEO.Municipality, GEO.AdministrativeArea),
            sc(GEO.Commune, GEO.Municipality),
            sc(GEO.Arrondissement, GEO.Municipality),
            sc(GEO.PopulationCount, GEO.Observation),
            sc(GEO.HouseholdCount, GEO.Observation),
            sc(GEO.UnemploymentRate, GEO.Observation),
            sp(GEO.inDepartement, GEO.locatedIn),
            sp(GEO.inRegion, GEO.locatedIn),
            dom(GEO.locatedIn, GEO.AdministrativeArea),
            rng(GEO.locatedIn, GEO.AdministrativeArea),
            rng(GEO.inDepartement, GEO.Departement),
            rng(GEO.inRegion, GEO.Region),
            dom(GEO.observationOf, GEO.Observation),
            rng(GEO.observationOf, GEO.AdministrativeArea),
            dom(GEO.measuredValue, GEO.Observation),
            dom(GEO.measuredYear, GEO.Observation),
            dom(GEO.areaName, GEO.AdministrativeArea),
        ]
    )


def generate_geo(
    regions: int = 3,
    departements_per_region: int = 4,
    communes_per_departement: int = 40,
    observation_years: int = 3,
    seed: int = 7,
    include_schema: bool = True,
) -> Graph:
    """Generate the hierarchy plus per-commune observations.

    >>> len(generate_geo(regions=1, departements_per_region=1,
    ...                  communes_per_departement=2, observation_years=1)) > 10
    True
    """
    rng_source = random.Random(seed)
    graph = Graph()
    if include_schema:
        graph.add_all(geo_schema().to_triples())

    observation_index = 0
    for region_index in range(regions):
        region = GEO.term("region/%d" % region_index)
        graph.add(Triple(region, RDF_TYPE, GEO.Region))
        graph.add(
            Triple(region, GEO.areaName, Literal("Region %d" % region_index))
        )
        for dept_offset in range(departements_per_region):
            dept_index = region_index * departements_per_region + dept_offset
            departement = GEO.term("departement/%d" % dept_index)
            graph.add(Triple(departement, RDF_TYPE, GEO.Departement))
            graph.add(Triple(departement, GEO.inRegion, region))
            graph.add(
                Triple(
                    departement,
                    GEO.areaName,
                    Literal("Departement %d" % dept_index),
                )
            )
            for commune_offset in range(communes_per_departement):
                commune_index = (
                    dept_index * communes_per_departement + commune_offset
                )
                commune = GEO.term("commune/%d" % commune_index)
                graph.add(Triple(commune, RDF_TYPE, GEO.Commune))
                graph.add(Triple(commune, GEO.inDepartement, departement))
                graph.add(
                    Triple(
                        commune,
                        GEO.areaName,
                        Literal("Commune %d" % commune_index),
                    )
                )
                for year_offset in range(observation_years):
                    year = 2010 + year_offset
                    kind = rng_source.choice(
                        (GEO.PopulationCount, GEO.HouseholdCount,
                         GEO.UnemploymentRate)
                    )
                    observation = GEO.term("obs/%d" % observation_index)
                    observation_index += 1
                    graph.add(Triple(observation, RDF_TYPE, kind))
                    graph.add(Triple(observation, GEO.observationOf, commune))
                    graph.add(
                        Triple(
                            observation,
                            GEO.measuredYear,
                            Literal(str(year)),
                        )
                    )
                    graph.add(
                        Triple(
                            observation,
                            GEO.measuredValue,
                            Literal(str(rng_source.randrange(100, 100000))),
                        )
                    )
    return graph


def geo_queries() -> Dict[str, ConjunctiveQuery]:
    """Representative analytical queries over the geo dataset."""
    x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
    return {
        # Everything located somewhere (subproperty reasoning).
        "G1": ConjunctiveQuery(
            [x, y], [TriplePattern(x, GEO.locatedIn, y)]
        ),
        # Observations (class reasoning) of communes of a region.
        "G2": ConjunctiveQuery(
            [x, z],
            [
                TriplePattern(x, RDF_TYPE, GEO.Observation),
                TriplePattern(x, GEO.observationOf, y),
                TriplePattern(y, GEO.inDepartement, z),
            ],
        ),
        # Areas with any recorded observation, typed openly.
        "G3": ConjunctiveQuery(
            [y, w],
            [
                TriplePattern(x, GEO.observationOf, y),
                TriplePattern(y, RDF_TYPE, w),
            ],
        ),
        # Administrative areas and their names (domain reasoning).
        "G4": ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, GEO.AdministrativeArea),
                TriplePattern(x, GEO.areaName, y),
            ],
        ),
    }
