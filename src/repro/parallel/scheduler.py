"""A small deterministic task-graph scheduler over :class:`ExecutorPool`.

Plan fan-out is rarely a flat list: the materialized engine evaluates
a JUCQ's fragment subtrees concurrently *and then* runs a combine step
that consumes all of them; saturation rounds chunk, merge, and chunk
again.  :class:`TaskGraph` expresses that shape: named tasks with
explicit dependencies, executed wave by wave — every task whose
dependencies are complete runs concurrently on the pool, and each task
receives the results of everything finished so far.

Waves keep the scheduler deterministic: tasks are started in insertion
order within a wave, results are keyed by name, and a serial pool
degenerates to plain ordered execution.  A failure inside a wave
cancels that wave's pending siblings (the pool's scatter semantics)
and abandons all later waves.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

from .pool import ExecutorPool

#: A task body: receives the results of all completed tasks, keyed by
#: task name (only the declared dependencies are guaranteed present).
TaskFn = Callable[[Dict[str, Any]], Any]


class TaskGraph:
    """Named tasks with dependencies, run in topological waves.

    >>> graph = TaskGraph()
    >>> graph.add("a", lambda done: 2)
    >>> graph.add("b", lambda done: 3)
    >>> graph.add("sum", lambda done: done["a"] + done["b"], after=("a", "b"))
    >>> graph.run(ExecutorPool(1))["sum"]
    5
    """

    def __init__(self) -> None:
        self._tasks: List[Tuple[str, TaskFn, Tuple[str, ...]]] = []
        self._names: Set[str] = set()

    def add(self, name: str, fn: TaskFn, after: Sequence[str] = ()) -> None:
        """Register *fn* under *name*, runnable once every task in
        *after* has completed."""
        if name in self._names:
            raise ValueError("duplicate task name %r" % (name,))
        for dependency in after:
            if dependency not in self._names:
                raise ValueError(
                    "task %r depends on unknown task %r" % (name, dependency)
                )
        self._names.add(name)
        self._tasks.append((name, fn, tuple(after)))

    def __len__(self) -> int:
        return len(self._tasks)

    def run(self, pool: ExecutorPool) -> Dict[str, Any]:
        """Execute the graph on *pool*; returns ``{name: result}``.

        The first failing task's error propagates (its wave's pending
        siblings cancelled by the pool); later waves never start.
        """
        results: Dict[str, Any] = {}
        remaining = list(self._tasks)
        while remaining:
            wave = [
                (name, fn)
                for name, fn, after in remaining
                if all(dependency in results for dependency in after)
            ]
            if not wave:
                raise ValueError(
                    "dependency cycle among tasks %r"
                    % sorted(name for name, _fn, _after in remaining)
                )
            snapshot = dict(results)
            outputs = pool.scatter(
                [lambda fn=fn: fn(snapshot) for _name, fn in wave]
            )
            for (name, _fn), output in zip(wave, outputs):
                results[name] = output
            started = {name for name, _fn in wave}
            remaining = [
                task for task in remaining if task[0] not in started
            ]
        return results
