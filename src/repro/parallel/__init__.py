"""Intra-query parallelism: the shared worker pool and scheduler.

See :mod:`repro.parallel.pool` for the concurrency contract every
parallel code path in the repository follows.
"""

from .pool import ExecutorPool, pool_for, primary_error, shared_pool
from .scheduler import TaskGraph

__all__ = [
    "ExecutorPool",
    "TaskGraph",
    "pool_for",
    "primary_error",
    "shared_pool",
]
