"""The worker pool behind intra-query parallelism.

The paper's JUCQ reformulations are joins of *independently evaluable*
UCQ fragments, and each UCQ is a union of independent CQ disjuncts —
an embarrassingly parallel shape.  :class:`ExecutorPool` is the one
pool every parallel code path shares: fragment/disjunct evaluation in
both engines, federation endpoint fan-out, cover scoring, and chunked
saturation rounds all submit work here rather than owning threads.

Design rules the rest of the codebase relies on:

* **Serial is the identity.**  A pool with ``workers == 1`` runs every
  task inline on the calling thread, in submission order — the exact
  serial code path, so ``parallelism=1`` is byte-for-byte the old
  behaviour and the differential harnesses can compare against it.
* **No nested fan-out.**  A task running *on* the pool that submits
  more work to the same pool would deadlock a bounded pool (workers
  waiting on work only workers can run).  The pool tracks which
  threads are its own workers and degrades their submissions to inline
  execution, so nesting is safe and merely serial.
* **First failure wins, siblings are cancelled.**  ``scatter``/``map``
  cancel not-yet-started tasks as soon as one fails and re-raise the
  *primary* error — an error that is not a sibling-abort echo (see
  :meth:`~repro.resilience.budget.ExecutionBudget.charge_rows`: once a
  shared budget trips, every sibling's next charge raises a marked
  ``sibling_abort`` copy).  Running tasks cannot be interrupted
  mid-Python, but budget-metered tasks abort at their next charge.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def primary_error(errors: Sequence[BaseException]) -> BaseException:
    """The error worth re-raising from a failed fan-out: the first one
    that is not a ``sibling_abort`` echo of a shared budget trip (all
    siblings re-raise after the first trip; only the first carries the
    genuine overrun diagnostics)."""
    for error in errors:
        if not getattr(error, "sibling_abort", False):
            return error
    return errors[0]


class ExecutorPool:
    """A shared bounded worker pool (see module doc).

    >>> with ExecutorPool(workers=2) as pool:
    ...     pool.map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    """

    def __init__(self, workers: int = 1, name: str = "repro-worker"):
        if workers < 1:
            raise ValueError("a pool needs >= 1 worker, got %r" % (workers,))
        self.workers = workers
        self._name = name
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._worker_threads: set = set()

    # ------------------------------------------------------------------

    @property
    def serial(self) -> bool:
        """True when this pool runs everything inline (one worker)."""
        return self.workers <= 1

    def usable(self) -> bool:
        """True when fanning out from the *calling thread* would
        actually run concurrently: more than one worker, and the caller
        is not itself one of this pool's workers (whose submissions
        degrade to inline execution — see module doc)."""
        return self.workers > 1 and threading.get_ident() not in self._worker_threads

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix=self._name
                )
            return self._executor

    def _run(self, task: Callable[[], T]) -> T:
        ident = threading.get_ident()
        self._worker_threads.add(ident)
        try:
            return task()
        finally:
            self._worker_threads.discard(ident)

    # ------------------------------------------------------------------

    def submit(self, fn: Callable[..., T], *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; inline when serial/nested."""
        if not self.usable():
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # relayed through the future
                future.set_exception(exc)
            return future
        return self._ensure().submit(self._run, lambda: fn(*args, **kwargs))

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """``[fn(item) for item in items]`` with the loop body fanned
        out; results in item order, first failure re-raised."""
        materialized = list(items)
        return self.scatter([lambda item=item: fn(item) for item in materialized])

    def scatter(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run zero-argument *tasks* concurrently; results in task
        order.  On failure, pending siblings are cancelled, running
        ones are drained, and the primary error is re-raised."""
        tasks = list(tasks)
        if not self.usable() or len(tasks) <= 1:
            return [task() for task in tasks]
        executor = self._ensure()
        futures = [executor.submit(self._run, task) for task in tasks]
        pending = set(futures)
        failed = False
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            if failed:
                continue
            for future in done:
                if not future.cancelled() and future.exception() is not None:
                    failed = True
                    for other in pending:
                        other.cancel()
                    break
        if failed:
            errors = [
                future.exception()
                for future in futures
                if not future.cancelled() and future.exception() is not None
            ]
            raise primary_error(errors)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the worker threads (idempotent; the pool respawns
        them lazily if used again)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return "ExecutorPool(workers=%d)" % (self.workers,)


# ---------------------------------------------------------------------------
# The process-wide shared pool

_shared_lock = threading.Lock()
_shared_pool: Optional[ExecutorPool] = None


def shared_pool(workers: int) -> ExecutorPool:
    """The process-wide pool, grown to at least *workers* workers.

    Every ``answer(parallelism=N)`` call routes here so concurrent
    queries share one set of threads instead of each spawning their
    own; growing replaces the pool (the old threads drain and exit).
    """
    global _shared_pool
    if workers < 1:
        raise ValueError("parallelism must be >= 1, got %r" % (workers,))
    with _shared_lock:
        if _shared_pool is None or _shared_pool.workers < workers:
            previous, _shared_pool = _shared_pool, ExecutorPool(workers)
            if previous is not None:
                previous.close()
        return _shared_pool


def pool_for(parallelism: Optional[int]) -> Optional[ExecutorPool]:
    """The pool for a ``parallelism=`` argument: ``None`` (take the
    serial code path) for 1/None, the shared pool otherwise."""
    if parallelism is None:
        return None
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1, got %r" % (parallelism,))
    if parallelism == 1:
        return None
    return shared_pool(parallelism)
