"""The durability layer's filesystem seam.

Every byte the WAL and checkpointer write goes through a
:class:`FileSystem`, for two reasons:

* **crash injection** — the chaos harness substitutes
  :class:`~repro.resilience.faults.CrashingFileSystem`, which tears
  writes at a chosen byte offset and dies around renames, so recovery
  can be tested against every window a real crash could hit;
* **durability levels** — :meth:`FileSystem.append` pushes bytes into
  the OS (they survive the *process* dying, which is the crash model
  the harness simulates), while :meth:`FileSystem.sync` additionally
  ``fsync``\\ s (surviving power loss).  The write-ahead log chooses
  per its sync policy.

The class is intentionally dependency-free: the resilience layer can
wrap it without importing anything from this package.
"""

from __future__ import annotations

import os
from typing import Dict, List


class FileSystem:
    """Real files, with cached append handles per path.

    Handles stay open across :meth:`append` calls (re-opening per
    record would dominate the WAL's hot path); every append is flushed
    to the OS so a simulated process death loses at most the bytes of
    a torn final write, exactly like a real one.
    """

    def __init__(self):
        self._handles: Dict[str, object] = {}

    # -- byte streams --------------------------------------------------

    def append(self, path: str, data: bytes) -> None:
        """Append *data* to *path* (creating it), flushed to the OS."""
        handle = self._handles.get(path)
        if handle is None or handle.closed:
            handle = open(path, "ab")
            self._handles[path] = handle
        handle.write(data)
        handle.flush()

    def write(self, path: str, data: bytes) -> None:
        """Create/overwrite *path* with *data* (checkpoint temp files)."""
        self.close(path)
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()

    def sync(self, path: str) -> None:
        """``fsync`` *path* — full durability, not just process-crash."""
        handle = self._handles.get(path)
        if handle is not None and not handle.closed:
            handle.flush()
            os.fsync(handle.fileno())
            return
        with open(path, "rb") as handle:
            os.fsync(handle.fileno())

    def sync_dir(self, path: str) -> None:
        """``fsync`` a directory so renames within it are durable.
        Best-effort: some platforms refuse directory fsync."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- whole-file / metadata ops ------------------------------------

    def replace(self, source: str, destination: str) -> None:
        """Atomic rename (the checkpoint publication step)."""
        self.close(source)
        self.close(destination)
        os.replace(source, destination)

    def read(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def size(self, path: str) -> int:
        return os.path.getsize(path)

    def listdir(self, path: str) -> List[str]:
        return sorted(os.listdir(path))

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def remove(self, path: str) -> None:
        self.close(path)
        if os.path.exists(path):
            os.remove(path)

    def truncate(self, path: str, size: int) -> None:
        """Cut *path* to *size* bytes (recovery drops torn WAL tails)."""
        self.close(path)
        with open(path, "rb+") as handle:
            handle.truncate(size)

    # -- handle lifecycle ----------------------------------------------

    def close(self, path: str) -> None:
        handle = self._handles.pop(path, None)
        if handle is not None and not handle.closed:
            handle.close()

    def close_all(self) -> None:
        for path in list(self._handles):
            self.close(path)
