"""Deterministic recovery: checkpoint + WAL suffix → live store.

The contract tested by the crash harness: after a crash at *any* byte,
``recover`` returns a store equal to replaying some prefix of the
logical operations — the longest prefix whose WAL records survived
intact.  It never raises on bad bytes; torn or corrupt tails are
truncated (and, with ``truncate=True``, physically removed so the next
append continues from the last valid record).

Checkpoint selection is *latest-valid-wins*: checkpoints are tried
newest-first, and a corrupt one (torn temp-file rename, bit rot) falls
back to its predecessor — whose WAL segments are retained exactly for
this — before falling back to an empty store replaying segment 0.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

from ..saturation.incremental import IncrementalSaturator
from ..storage.store import TripleStore
from .checkpoint import CheckpointCorrupt, decode_checkpoint, restore_snapshot
from .io import FileSystem
from .ops import WALFormatError, apply_op, decode_op
from .wal import HEADER_SIZE, WriteAheadLog

#: On-disk names.  Zero-padded so lexicographic == numeric order.
CHECKPOINT_PATTERN = "checkpoint-%08d.ckpt"
WAL_PATTERN = "wal-%08d.log"

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.ckpt$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")


def checkpoint_path(directory: str, sequence: int) -> str:
    return os.path.join(directory, CHECKPOINT_PATTERN % sequence)


def wal_path(directory: str, segment: int) -> str:
    return os.path.join(directory, WAL_PATTERN % segment)


def list_checkpoints(io: FileSystem, directory: str) -> List[Tuple[int, str]]:
    """``(sequence, path)`` pairs, newest first."""
    found = []
    for name in io.listdir(directory):
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found, reverse=True)


def list_wal_segments(io: FileSystem, directory: str) -> List[Tuple[int, str]]:
    """``(segment, path)`` pairs, oldest first."""
    found = []
    for name in io.listdir(directory):
        match = _WAL_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


class RecoveryResult:
    """Everything ``recover`` learned, plus the live objects.

    ``wal_segment``/``wal_offset`` point at the end of the last valid
    record — exactly where the reopened log must append next.
    """

    def __init__(self) -> None:
        self.store: TripleStore = TripleStore()
        self.saturator: Optional[IncrementalSaturator] = None
        #: Sequence of the checkpoint restored (None: none usable).
        self.checkpoint_sequence: Optional[int] = None
        #: Checkpoints that failed validation, newest first.
        self.corrupt_checkpoints: List[str] = []
        self.records_replayed = 0
        #: True when any WAL bytes had to be dropped.
        self.truncated = False
        self.truncated_bytes = 0
        self.reason: Optional[str] = None
        self.data_epoch = 0
        self.schema_epoch = 0
        self.wal_segment = 0
        self.wal_offset = 0
        #: True when there was nothing to recover from at all.
        self.empty = True

    def summary(self) -> Dict[str, object]:
        """The structured report ``repro recover`` prints as JSON."""
        return {
            "checkpoint_sequence": self.checkpoint_sequence,
            "corrupt_checkpoints": list(self.corrupt_checkpoints),
            "records_replayed": self.records_replayed,
            "truncated": self.truncated,
            "truncated_bytes": self.truncated_bytes,
            "reason": self.reason,
            "triples": self.store.triple_count,
            "constraints": len(self.store.schema),
            "data_epoch": self.data_epoch,
            "schema_epoch": self.schema_epoch,
            "wal_segment": self.wal_segment,
            "wal_offset": self.wal_offset,
            "empty": self.empty,
        }

    def __repr__(self) -> str:
        return "RecoveryResult(<%d triples, %d replayed%s>)" % (
            self.store.triple_count,
            self.records_replayed,
            ", truncated" if self.truncated else "",
        )


def recover(
    directory: str,
    io: Optional[FileSystem] = None,
    with_saturator: bool = False,
    truncate: bool = True,
) -> RecoveryResult:
    """Recover the durable state under *directory* (see module doc).

    ``with_saturator`` asks for an :class:`IncrementalSaturator` even
    when the chosen checkpoint carries no saturation state (it is then
    rebuilt by replay/insertion).  ``truncate=False`` leaves bad WAL
    tails on disk — the read-only inspection mode of ``recover
    --verify``.
    """
    io = io if io is not None else FileSystem()
    result = RecoveryResult()
    if not io.exists(directory):
        if with_saturator:
            result.saturator = IncrementalSaturator(result.store.schema)
        return result

    # 1. Newest checkpoint that validates end to end.
    body = None
    for sequence, path in list_checkpoints(io, directory):
        try:
            body = decode_checkpoint(io.read(path))
            result.store, result.saturator = restore_snapshot(body)
            result.checkpoint_sequence = sequence
            break
        except CheckpointCorrupt as exc:
            result.corrupt_checkpoints.append(
                "%s: %s" % (os.path.basename(path), exc))
            body = None
    if body is not None:
        result.empty = False
        epochs = body.get("epochs", {})
        result.data_epoch = int(epochs.get("data", 0))
        result.schema_epoch = int(epochs.get("schema", 0))
        result.wal_segment = int(body["wal_segment"])
        result.wal_offset = int(body["wal_offset"])
    if with_saturator and result.saturator is None:
        result.saturator = IncrementalSaturator(result.store.schema)
        for triple in result.store.to_graph().data_triples():
            result.saturator.insert(triple)

    # 2. Replay the WAL suffix: the checkpoint's segment from its
    # offset, then every later segment from 0.  A missing segment reads
    # as empty (the crash window between checkpoint publication and
    # the first append to the rotated log).
    segment = result.wal_segment
    offset = result.wal_offset
    known = dict(list_wal_segments(io, directory))
    last_segment = max(known) if known else segment
    while segment <= last_segment:
        log = WriteAheadLog(wal_path(directory, segment), io=io, sync="never")
        decoded = log.read_from(offset)
        if decoded.records or io.exists(log.path):
            result.empty = False
        consumed = offset
        for payload in decoded.records:
            try:
                op, triple = decode_op(payload)
                epoch_class = apply_op(
                    result.store, result.saturator, op, triple)
            except (WALFormatError, ValueError) as exc:
                # A CRC-valid frame with an alien payload: same
                # treatment as corruption — this record and everything
                # after it never happened.
                decoded.truncated = True
                decoded.reason = "undecodable record: %s" % exc
                decoded.valid_length = consumed - offset
                break
            consumed += HEADER_SIZE + len(payload)
            result.records_replayed += 1
            if epoch_class == "schema":
                result.schema_epoch += 1
            else:
                result.data_epoch += 1
        valid_end = offset + decoded.valid_length
        if decoded.truncated:
            result.truncated = True
            result.reason = decoded.reason
            if io.exists(log.path):
                result.truncated_bytes += io.size(log.path) - valid_end
                if truncate:
                    log.truncate_to(valid_end)
            # Later segments are unreachable past a bad record: the
            # prefix property must hold across segment boundaries.
            if truncate:
                for later, path in list_wal_segments(io, directory):
                    if later > segment:
                        result.truncated_bytes += io.size(path)
                        io.remove(path)
            else:
                result.truncated_bytes += sum(
                    io.size(path)
                    for later, path in list_wal_segments(io, directory)
                    if later > segment
                )
            result.wal_segment = segment
            result.wal_offset = valid_end
            return result
        result.wal_segment = segment
        result.wal_offset = valid_end
        segment += 1
        offset = 0
    return result


def verify_recovery(result: RecoveryResult) -> List[str]:
    """Cross-check a recovered store against a fresh rebuild.

    Decodes the recovered store back to a logical graph, rebuilds a
    store from scratch with :meth:`TripleStore.from_graph`, and
    compares triples, schema and per-property statistics *keyed by
    decoded term* (id assignment differs between the two builds, so
    raw-id comparison would be meaningless).  Returns human-readable
    discrepancies; empty means verified.
    """
    problems: List[str] = []
    recovered = result.store
    fresh = TripleStore.from_graph(recovered.to_graph(), recovered.schema)

    recovered_triples = set(recovered.to_graph())
    fresh_triples = set(fresh.to_graph())
    if recovered_triples != fresh_triples:
        missing = len(fresh_triples - recovered_triples)
        extra = len(recovered_triples - fresh_triples)
        problems.append(
            "triple sets differ (%d missing, %d extra)" % (missing, extra))

    # Compare schema *closures*: a fresh rebuild absorbs entailed schema
    # triples as direct constraints, so direct-set fingerprints
    # legitimately differ while the closures must not.
    if set(recovered.schema.entailed_triples()) != set(
            fresh.schema.entailed_triples()):
        problems.append("schema closure differs from a fresh rebuild")

    # Global distinct-subject/object counts are upper bounds under
    # deletion (see StoreStatistics.unrecord), so only the exactly-
    # maintained summary fields must match a fresh rebuild.
    recovered_summary = recovered.statistics.summary()
    fresh_summary = fresh.statistics.summary()
    for field in ("triples", "properties", "classes"):
        if recovered_summary[field] != fresh_summary[field]:
            problems.append(
                "statistics %s: recovered %r != fresh %r"
                % (field, recovered_summary[field], fresh_summary[field]))

    def per_property(store: TripleStore) -> Dict:
        return {
            store.dictionary.decode(property_id): (
                stats.triples,
                stats.distinct_subjects,
                stats.distinct_objects,
            )
            for property_id, stats in store.statistics.per_property.items()
        }

    if per_property(recovered) != per_property(fresh):
        problems.append("per-property statistics differ from a fresh rebuild")

    if result.saturator is not None:
        explicit = result.saturator.explicit_triples()
        data = {t for t in recovered_triples if t.is_data_triple()}
        if explicit != data:
            problems.append(
                "saturator explicit triples differ from store data triples")
        if not explicit <= set(result.saturator.saturated()):
            problems.append("saturation lost explicit triples")
    return problems
