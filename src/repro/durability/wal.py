"""The append-only, checksummed write-ahead log.

One framed record per logical operation (triple insert/delete,
constraint add/remove).  Frame layout, little-endian::

    +-------+----------------+---------------+-----------------+
    | magic | payload length | CRC32(payload) | payload bytes  |
    | 2 B   | 4 B            | 4 B            | length B       |
    +-------+----------------+---------------+-----------------+

The frame is the unit of atomicity: a record is durable iff its whole
frame is on disk and its CRC matches.  :func:`decode_records` walks a
byte buffer and stops at the first *torn* (incomplete) or *corrupt*
(bad magic / insane length / CRC mismatch) frame, returning the valid
prefix and where it ends — the recovery truncation rule.  Everything
after the first bad frame is unreachable by construction, so a crash
mid-append can never corrupt earlier history.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, List, Optional

from .io import FileSystem

#: Frame magic: lets recovery distinguish "garbage tail" from "short
#: final record" cheaply and resynchronization-proofs the format.
MAGIC = b"WR"

_HEADER = struct.Struct("<2sII")

#: Header size in bytes (magic + length + CRC32).
HEADER_SIZE = _HEADER.size

#: Upper bound on one payload: a frame whose length field exceeds this
#: is treated as corrupt rather than trusted to allocate gigabytes.
MAX_PAYLOAD = 1 << 24


def encode_record(payload: bytes) -> bytes:
    """Frame one payload for appending."""
    if len(payload) > MAX_PAYLOAD:
        raise ValueError("WAL payload of %d bytes exceeds the %d-byte cap"
                         % (len(payload), MAX_PAYLOAD))
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


class DecodeResult:
    """The valid prefix of a WAL byte buffer.

    ``records`` are the decoded payloads; ``valid_length`` is the byte
    offset (relative to the buffer start) where the valid prefix ends;
    ``truncated`` is True when trailing bytes had to be dropped, with
    ``reason`` saying why (``"torn record"`` / ``"corrupt record"``).

    ``end_offset`` is the *absolute* position where the valid prefix
    ends in whatever the bytes were decoded from: for
    :func:`decode_records` it equals ``valid_length``, but for
    :meth:`WriteAheadLog.read_from` it is ``offset + valid_length`` —
    the file position an incremental tailer must resume from.  Passing
    ``valid_length`` back as the next ``read_from`` offset re-reads (or
    with a stale cursor skips) frames; ``end_offset`` never does.
    """

    __slots__ = ("records", "valid_length", "truncated", "reason",
                 "end_offset")

    def __init__(
        self,
        records: List[bytes],
        valid_length: int,
        truncated: bool,
        reason: Optional[str],
        end_offset: Optional[int] = None,
    ):
        self.records = records
        self.valid_length = valid_length
        self.truncated = truncated
        self.reason = reason
        self.end_offset = valid_length if end_offset is None else end_offset

    def __repr__(self) -> str:
        return "DecodeResult(<%d records, %d bytes%s>)" % (
            len(self.records),
            self.valid_length,
            ", truncated: %s" % self.reason if self.truncated else "",
        )


def decode_records(data: bytes) -> DecodeResult:
    """Decode every valid record from *data*, stopping at the first
    torn or corrupt frame (never raising on bad bytes)."""
    records: List[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_SIZE:
            return DecodeResult(records, offset, True, "torn record")
        magic, length, checksum = _HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_PAYLOAD:
            return DecodeResult(records, offset, True, "corrupt record")
        body_start = offset + HEADER_SIZE
        if total - body_start < length:
            return DecodeResult(records, offset, True, "torn record")
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != checksum:
            return DecodeResult(records, offset, True, "corrupt record")
        records.append(payload)
        offset = body_start + length
    return DecodeResult(records, offset, False, None)


class WriteAheadLog:
    """An append-only log of framed records over one segment file.

    ``sync`` selects the durability level per append: ``"always"``
    fsyncs every record (survives power loss), ``"never"`` only pushes
    bytes to the OS (survives process death — the crash model of the
    chaos harness — and is what the E15 benchmark measures as the hot
    load path).
    """

    SYNC_POLICIES = ("always", "never")

    def __init__(self, path: str, io: Optional[FileSystem] = None,
                 sync: str = "always"):
        if sync not in self.SYNC_POLICIES:
            raise ValueError("sync must be one of %r, got %r"
                             % (self.SYNC_POLICIES, sync))
        self.path = path
        self.io = io if io is not None else FileSystem()
        self.sync_policy = sync
        self.size = self.io.size(path) if self.io.exists(path) else 0

    def append(self, payload: bytes) -> int:
        """Append one record; return the log size after it."""
        record = encode_record(payload)
        self.io.append(self.path, record)
        self.size += len(record)
        if self.sync_policy == "always":
            self.io.sync(self.path)
        return self.size

    def append_many(self, payloads: Iterable[bytes]) -> int:
        """Append a batch of records in one write; return the log size.

        The frames are identical to one :meth:`append` per payload —
        only the I/O granularity changes — so recovery's record-level
        truncation rule is unaffected.  Bulk load uses this to avoid
        one flush per triple.
        """
        data = b"".join(encode_record(payload) for payload in payloads)
        if not data:
            return self.size
        self.io.append(self.path, data)
        self.size += len(data)
        if self.sync_policy == "always":
            self.io.sync(self.path)
        return self.size

    def sync(self) -> None:
        """Force an fsync regardless of policy (checkpoint barriers)."""
        if self.io.exists(self.path):
            self.io.sync(self.path)

    def read_from(self, offset: int = 0) -> DecodeResult:
        """Decode the suffix starting at byte *offset*.  A missing file
        or an offset beyond its end reads as empty (both arise in the
        crash window between checkpoint publication and segment
        rotation).

        The result's ``valid_length`` is relative to the read slice;
        its ``end_offset`` is the absolute file position where the
        valid prefix ends — feed that (not ``valid_length``) back in as
        the next offset when tailing the segment incrementally."""
        if not self.io.exists(self.path):
            return DecodeResult([], 0, False, None, end_offset=offset)
        data = self.io.read(self.path)
        if offset >= len(data):
            return DecodeResult([], 0, False, None, end_offset=offset)
        result = decode_records(data[offset:])
        result.end_offset = offset + result.valid_length
        return result

    def truncate_to(self, size: int) -> None:
        """Physically drop everything past *size* (the recovery
        truncation rule made permanent, so the next append lands
        directly after the last valid record)."""
        if self.io.exists(self.path) and self.io.size(self.path) > size:
            self.io.truncate(self.path, size)
        self.size = size

    def __repr__(self) -> str:
        return "WriteAheadLog(%r, %d bytes, sync=%s)" % (
            self.path, self.size, self.sync_policy)
