"""Logical operations: the WAL's payload vocabulary.

Each WAL record carries exactly **one** logical operation, encoded as
an op tag plus the triple in N-Triples syntax::

    T+ <s> <p> <o> .      data/schema triple inserted
    T- <s> <p> <o> .      triple deleted
    C+ <s> <p> <o> .      schema constraint added (triple form)
    C- <s> <p> <o> .      schema constraint removed

One-op-one-record is what makes recovery *operation-atomic*: the
truncation rule drops suffixes at record granularity, so a recovered
store always equals some operation-prefix replay — a constraint
addition can never be half-applied.  The side effects a constraint
implies (the closure's entailed schema triples in the store, the
saturator's re-saturation) are deliberately *not* logged; replaying
the ``C±`` record re-derives them through :func:`apply_op`, the single
code path shared by the live mutation methods and recovery.
"""

from __future__ import annotations

from typing import Optional

from ..rdf.io import ParseError, parse_line
from ..rdf.triples import Triple
from ..saturation.incremental import IncrementalSaturator
from ..schema.constraints import Constraint
from ..storage.store import TripleStore

#: Op tags (payload prefix, one space, then the triple's n3 line).
OP_INSERT = "T+"
OP_DELETE = "T-"
OP_CONSTRAINT_ADD = "C+"
OP_CONSTRAINT_REMOVE = "C-"

OPS = frozenset((OP_INSERT, OP_DELETE, OP_CONSTRAINT_ADD, OP_CONSTRAINT_REMOVE))


class WALFormatError(ValueError):
    """A structurally valid WAL record carries an undecodable payload.

    Distinct from frame corruption (CRC catches that): this means the
    record was written by something that is not this codec.  Recovery
    treats it like corruption — truncate, don't crash.
    """


def encode_op(op: str, triple: Triple) -> bytes:
    """Serialize one logical operation into a WAL payload."""
    if op not in OPS:
        raise ValueError("unknown WAL op %r" % op)
    return ("%s %s" % (op, triple.n3())).encode("utf-8")


def decode_op(payload: bytes):
    """Parse a WAL payload back into ``(op, triple)``."""
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError:
        raise WALFormatError("WAL payload is not UTF-8")
    op, _, rest = text.partition(" ")
    if op not in OPS:
        raise WALFormatError("unknown WAL op tag %r" % op[:10])
    try:
        triple = parse_line(rest)
    except ParseError as exc:
        raise WALFormatError("bad WAL triple: %s" % exc)
    return op, triple


# ---------------------------------------------------------------------------
# Application (live path and recovery replay share these)


def apply_constraint_add(
    store: TripleStore,
    saturator: Optional[IncrementalSaturator],
    constraint: Constraint,
) -> bool:
    """Add a constraint and its derived effects; True when new."""
    if not store.schema.add(constraint):
        return False
    # The store mirrors the closure as schema triples (TripleStore.load
    # does the same); inserts are idempotent, so re-deriving the whole
    # entailed set per constraint stays correct.
    for triple in store.schema.entailed_triples():
        store.insert(triple)
    if saturator is not None:
        saturator.add_constraint(constraint)
    return True


def apply_constraint_remove(
    store: TripleStore,
    saturator: Optional[IncrementalSaturator],
    constraint: Constraint,
) -> bool:
    """Remove a constraint and retract no-longer-entailed schema
    triples from the store; True when it was present."""
    stale = set(store.schema.entailed_triples())
    if not store.schema.remove(constraint):
        return False
    stale -= set(store.schema.entailed_triples())
    for triple in stale:
        store.delete(triple)
    if saturator is not None:
        saturator.remove_constraint(constraint)
    return True


def apply_op(
    store: TripleStore,
    saturator: Optional[IncrementalSaturator],
    op: str,
    triple: Triple,
) -> str:
    """Apply one decoded operation; returns the epoch class it bumps
    (``"data"`` or ``"schema"``), mirroring the cache's
    :meth:`~repro.cache.cache.QueryCache.note_triple_change` split."""
    if op == OP_INSERT:
        inserted = store.insert(triple)
        if inserted and saturator is not None and triple.is_data_triple():
            saturator.insert(triple)
        return "schema" if triple.is_schema_triple() else "data"
    if op == OP_DELETE:
        deleted = store.delete(triple)
        if deleted and saturator is not None and triple.is_data_triple():
            saturator.delete(triple)
        return "schema" if triple.is_schema_triple() else "data"
    constraint = Constraint.from_triple(triple)
    if op == OP_CONSTRAINT_ADD:
        apply_constraint_add(store, saturator, constraint)
    else:
        apply_constraint_remove(store, saturator, constraint)
    return "schema"
