"""Crash-safe storage: write-ahead log, checkpoints, recovery.

The durability subsystem (DESIGN.md §10) makes the in-memory engine of
:mod:`repro.storage` survive process crashes: every logical mutation
is a CRC32-framed WAL record, checkpoints snapshot the full state
atomically, and :func:`recover` deterministically rebuilds the store
from the latest valid checkpoint plus the intact WAL suffix —
truncating torn or corrupt tails instead of crashing.
"""

from .checkpoint import (
    CheckpointCorrupt,
    build_snapshot,
    decode_checkpoint,
    encode_checkpoint,
    restore_snapshot,
)
from .io import FileSystem
from .manager import DurableStore
from .ops import (
    OP_CONSTRAINT_ADD,
    OP_CONSTRAINT_REMOVE,
    OP_DELETE,
    OP_INSERT,
    WALFormatError,
    apply_op,
    decode_op,
    encode_op,
)
from .recovery import (
    RecoveryResult,
    checkpoint_path,
    list_checkpoints,
    list_wal_segments,
    recover,
    verify_recovery,
    wal_path,
)
from .wal import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    DecodeResult,
    WriteAheadLog,
    decode_records,
    encode_record,
)

__all__ = [
    "CheckpointCorrupt",
    "DecodeResult",
    "DurableStore",
    "FileSystem",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_PAYLOAD",
    "OP_CONSTRAINT_ADD",
    "OP_CONSTRAINT_REMOVE",
    "OP_DELETE",
    "OP_INSERT",
    "RecoveryResult",
    "WALFormatError",
    "WriteAheadLog",
    "apply_op",
    "build_snapshot",
    "checkpoint_path",
    "decode_checkpoint",
    "decode_op",
    "decode_records",
    "encode_checkpoint",
    "encode_op",
    "encode_record",
    "list_checkpoints",
    "list_wal_segments",
    "recover",
    "restore_snapshot",
    "verify_recovery",
    "wal_path",
]
