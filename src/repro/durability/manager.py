"""The durable store facade: a TripleStore whose mutations survive crashes.

:class:`DurableStore` ties the in-memory engine objects (store,
optional incremental saturator, optional query cache) to a WAL and
checkpoint directory.  Logging is *listener-based*: the store's own
mutation notifications drive ``T±`` records, so every effective data
mutation — including ones made directly on ``durable.store`` by other
subsystems — reaches the log.  Constraint changes go through
:meth:`add_constraint` / :meth:`remove_constraint`, which log a single
``C±`` record and suppress the derived triple notifications (the
record re-derives them on replay — one op, one record).

Checkpoint rotation protocol (crash-safe at every byte, see
``tests/test_durability_crash.py``):

1. fsync the current WAL segment *s* (the snapshot must not claim
   state the log could still lose);
2. write the snapshot to a temp file, fsync, atomically rename to
   ``checkpoint-<seq>``, fsync the directory — the checkpoint body
   already points at segment *s+1*, offset 0;
3. only then rotate appends to ``wal-<s+1>`` and prune obsolete files.

A crash before (2) recovers from the previous checkpoint plus all of
segment *s*; a crash after (2) recovers from the new checkpoint, and a
missing ``wal-<s+1>`` reads as an empty log.  Both windows land on the
same logical state.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema
from .checkpoint import build_snapshot, encode_checkpoint
from .io import FileSystem
from .ops import (
    OP_CONSTRAINT_ADD,
    OP_CONSTRAINT_REMOVE,
    OP_DELETE,
    OP_INSERT,
    apply_constraint_add,
    apply_constraint_remove,
    encode_op,
)
from .recovery import (
    RecoveryResult,
    checkpoint_path,
    list_checkpoints,
    list_wal_segments,
    recover,
    wal_path,
)
from .wal import WriteAheadLog

#: The checkpoint temp name (ignored by recovery's name patterns).
_TEMP_NAME = "checkpoint.tmp"

#: How many checkpoints (and their WAL tails) to retain: the newest
#: plus one fallback, so a corrupt latest checkpoint still recovers
#: losslessly.
KEEP_CHECKPOINTS = 2


class DurableStore:
    """A crash-safe :class:`~repro.storage.store.TripleStore`.

    >>> import tempfile
    >>> from repro.rdf import Namespace, RDF_TYPE, Triple
    >>> EX = Namespace("http://example.org/")
    >>> with tempfile.TemporaryDirectory() as directory:
    ...     durable = DurableStore.open(directory)
    ...     _ = durable.insert(Triple(EX.a, RDF_TYPE, EX.C))
    ...     durable.close()
    ...     reopened = DurableStore.open(directory)
    ...     reopened.store.triple_count
    1
    """

    def __init__(
        self,
        directory: str,
        recovery: RecoveryResult,
        io: FileSystem,
        sync: str = "always",
    ):
        self.directory = directory
        self.io = io
        self.sync_policy = sync
        self.recovery = recovery
        self.store = recovery.store
        self.saturator = recovery.saturator
        self.cache = None
        self.data_epoch = recovery.data_epoch
        self.schema_epoch = recovery.schema_epoch
        self.checkpoint_sequence = recovery.checkpoint_sequence or 0
        self.segment = recovery.wal_segment
        self.wal = WriteAheadLog(
            wal_path(directory, self.segment), io=io, sync=sync)
        # Recovery may have truncated a torn tail; resume right after
        # the last valid record.
        self.wal.size = recovery.wal_offset
        self.records_logged = 0
        self._quiet = False
        #: When not None, encoded records accumulate here instead of
        #: being appended individually (see :meth:`batch`).
        self._batch: Optional[List[bytes]] = None
        #: (sequence, wal_segment) of checkpoints known to exist —
        #: drives retention (oldest kept checkpoint pins its segments).
        self._known_checkpoints: List[Tuple[int, int]] = []
        if recovery.checkpoint_sequence is not None:
            self._known_checkpoints.append(
                (recovery.checkpoint_sequence, recovery.wal_segment))
        #: Lazily created snapshot bookkeeping (see :meth:`pin_snapshot`).
        self._snapshots = None
        #: Replication taps: called as ``fn(lsn, payload)`` for every
        #: WAL payload logged, *after* the local epoch bump, in log
        #: order (see :meth:`add_wal_listener`).
        self._wal_listeners: List[Callable[[int, bytes], None]] = []
        #: ``lsn -> state_crc`` fingerprints recorded at checkpoint
        #: time; replication's divergence check compares a follower's
        #: fingerprint against the primary's history at the same LSN.
        self.checkpoint_crcs: Dict[int, int] = {}
        self.store.add_listener(self._on_store_event)

    # ------------------------------------------------------------------
    # Lifecycle

    @classmethod
    def open(
        cls,
        directory: str,
        io: Optional[FileSystem] = None,
        sync: str = "always",
        with_saturator: bool = False,
    ) -> "DurableStore":
        """Recover (or initialize) the durable state under *directory*."""
        io = io if io is not None else FileSystem()
        io.makedirs(directory)
        recovery = recover(
            directory, io=io, with_saturator=with_saturator, truncate=True)
        return cls(directory, recovery, io, sync=sync)

    def close(self) -> None:
        """Flush and release file handles (the store stays usable
        in-memory; reopening the directory recovers this state)."""
        self.wal.sync()
        self.io.close_all()

    # ------------------------------------------------------------------
    # Logging (listener-driven for data, explicit for constraints)

    def _on_store_event(self, triple: Triple, operation: str) -> None:
        if self._quiet:
            return
        self._log(
            OP_INSERT if operation == "insert" else OP_DELETE, triple)

    def _log(self, op: str, triple: Triple) -> None:
        payload = encode_op(op, triple)
        if self._batch is not None:
            self._batch.append(payload)
        else:
            self.wal.append(payload)
        self.records_logged += 1
        if op in (OP_CONSTRAINT_ADD, OP_CONSTRAINT_REMOVE) or (
            triple.is_schema_triple()
        ):
            self.schema_epoch += 1
        else:
            self.data_epoch += 1
        for listener in self._wal_listeners:
            listener(self.lsn, payload)

    # ------------------------------------------------------------------
    # Replication hooks

    @property
    def lsn(self) -> int:
        """The log sequence number: how many operations this state is
        the result of.  Every op bumps exactly one of the two epochs,
        both are checkpointed and replayed by recovery, so the LSN is
        durable for free and two stores with equal op histories agree
        on it."""
        return self.data_epoch + self.schema_epoch

    def add_wal_listener(self, listener: Callable[[int, bytes], None]) -> None:
        """Subscribe to every WAL payload as it is logged.  Called as
        ``listener(lsn, payload)`` where *lsn* is the LSN the store
        reached by applying that record — the replication shipping
        tap.  Listeners fire in log order, including inside
        :meth:`batch` (batching coalesces the I/O, not the stream)."""
        self._wal_listeners.append(listener)

    def remove_wal_listener(self, listener) -> None:
        """Unsubscribe a :meth:`add_wal_listener` tap (fencing an old
        primary detaches its shipping taps)."""
        if listener in self._wal_listeners:
            self._wal_listeners.remove(listener)

    def state_crc(self) -> int:
        """A position-independent fingerprint of the logical state:
        CRC32 of the canonical checkpoint encoding with the sequence /
        segment / offset fields zeroed.  Two stores that applied the
        same op history have equal fingerprints regardless of how
        often either checkpointed; replication uses this for
        divergence detection and the byte-identity invariant."""
        body = build_snapshot(
            self.store, self.saturator, 0, 0, 0,
            self.data_epoch, self.schema_epoch)
        return zlib.crc32(encode_checkpoint(body))

    # ------------------------------------------------------------------
    # Mutations (the live path shares apply_* with recovery replay)

    def insert(self, triple: Triple) -> bool:
        """Insert one triple durably; True when it was new."""
        inserted = self.store.insert(triple)  # listener logs T+
        if inserted and self.saturator is not None and triple.is_data_triple():
            self.saturator.insert(triple)
        return inserted

    def delete(self, triple: Triple) -> bool:
        """Delete one triple durably; True when it was present."""
        deleted = self.store.delete(triple)  # listener logs T-
        if deleted and self.saturator is not None and triple.is_data_triple():
            self.saturator.delete(triple)
        return deleted

    def add_constraint(self, constraint: Constraint) -> bool:
        """Add a schema constraint durably (single ``C+`` record; the
        derived schema triples are re-derived on replay)."""
        self._prepare_snapshot_write()
        self._quiet = True
        try:
            added = apply_constraint_add(self.store, self.saturator, constraint)
        finally:
            self._quiet = False
        if added:
            self._log(OP_CONSTRAINT_ADD, constraint.to_triple())
            if self.cache is not None:
                self.cache.note_schema_change()
        return added

    def remove_constraint(self, constraint: Constraint) -> bool:
        """Remove a schema constraint durably (single ``C-`` record)."""
        self._prepare_snapshot_write()
        self._quiet = True
        try:
            removed = apply_constraint_remove(
                self.store, self.saturator, constraint)
        finally:
            self._quiet = False
        if removed:
            self._log(OP_CONSTRAINT_REMOVE, constraint.to_triple())
            if self.cache is not None:
                self.cache.note_schema_change()
        return removed

    @contextmanager
    def batch(self):
        """Coalesce WAL appends into a single write.

        Record *contents and order* are identical to the unbatched
        path — only the I/O granularity changes — so replay semantics
        are untouched.  Reentrant: a nested batch joins the outer one.
        """
        if self._batch is not None:
            yield
            return
        self._batch = []
        try:
            yield
        finally:
            records, self._batch = self._batch, None
            self.wal.append_many(records)

    def load(self, graph: Graph, schema: Optional[Schema] = None) -> int:
        """Bulk-load a graph durably: constraints first (each a ``C+``
        record), then data triples (one ``T+`` each).  Returns the
        number of WAL records written — the cost E15 measures.

        The WAL records are exactly what :meth:`add_constraint` /
        :meth:`insert` would have written, but the side effects are
        applied in bulk: one closure derivation for the whole
        constraint batch (instead of one per constraint — replay, which
        works record by record, re-derives the same end state) and one
        coalesced WAL write.
        """
        before = self.records_logged
        self._prepare_snapshot_write()
        combined = Schema.from_graph(graph)
        if schema is not None:
            for constraint in schema.direct_constraints():
                combined.add(constraint)
        with self.batch():
            added = []
            self._quiet = True
            try:
                for constraint in combined.direct_constraints():
                    if self.store.schema.add(constraint):
                        added.append(constraint)
                if added:
                    for triple in self.store.schema.entailed_triples():
                        self.store.insert(triple)
                    if self.saturator is not None:
                        for constraint in added:
                            self.saturator.add_constraint(constraint)
            finally:
                self._quiet = False
            for constraint in added:
                self._log(OP_CONSTRAINT_ADD, constraint.to_triple())
                if self.cache is not None:
                    self.cache.note_schema_change()
            for triple in graph.data_triples():
                self.insert(triple)
        return self.records_logged - before

    # ------------------------------------------------------------------
    # Checkpointing

    def checkpoint(self) -> str:
        """Snapshot the current state atomically; returns the published
        checkpoint path.  See the module doc for the crash windows."""
        sequence = self.checkpoint_sequence + 1
        next_segment = self.segment + 1
        body = build_snapshot(
            self.store,
            self.saturator,
            sequence,
            next_segment,
            0,
            self.data_epoch,
            self.schema_epoch,
        )
        self.wal.sync()
        temp = os.path.join(self.directory, _TEMP_NAME)
        final = checkpoint_path(self.directory, sequence)
        self.io.write(temp, encode_checkpoint(body))
        self.io.sync(temp)
        self.io.replace(temp, final)
        self.io.sync_dir(self.directory)
        # Published: rotate appends to the next segment.
        self.checkpoint_sequence = sequence
        self.segment = next_segment
        self.wal = WriteAheadLog(
            wal_path(self.directory, next_segment),
            io=self.io,
            sync=self.sync_policy,
        )
        self._known_checkpoints.append((sequence, next_segment))
        self.checkpoint_crcs[self.lsn] = self.state_crc()
        if len(self.checkpoint_crcs) > 8:
            for stale in sorted(self.checkpoint_crcs)[:-8]:
                del self.checkpoint_crcs[stale]
        self._prune()
        return final

    def _prune(self) -> None:
        """Drop checkpoints beyond the retention window and the WAL
        segments only they pinned."""
        if len(self._known_checkpoints) <= KEEP_CHECKPOINTS:
            return
        kept = self._known_checkpoints[-KEEP_CHECKPOINTS:]
        min_sequence = min(sequence for sequence, _ in kept)
        min_segment = min(segment for _, segment in kept)
        for sequence, path in list_checkpoints(self.io, self.directory):
            if sequence < min_sequence:
                self.io.remove(path)
        for segment, path in list_wal_segments(self.io, self.directory):
            if segment < min_segment:
                self.io.remove(path)
        self._known_checkpoints = kept

    # ------------------------------------------------------------------
    # Snapshot reads (epoch-pinned, copy-on-write)

    def pin_snapshot(self):
        """Pin the current state for readers: returns a
        :class:`~repro.storage.snapshot.StoreSnapshot` labelled with
        the durable ``(data_epoch, schema_epoch)`` pair at pin time.

        Pinning is O(1); the first write after a pin freezes the
        pre-write state through the checkpoint codec, so in-flight
        readers never observe a concurrent bulk load or saturation
        round.  Release the handle (or use it as a context manager) to
        free the frozen copy."""
        if self._snapshots is None:
            from ..storage.snapshot import SnapshotManager

            self._snapshots = SnapshotManager(
                self.store,
                label_fn=lambda: (self.data_epoch, self.schema_epoch),
            )
        return self._snapshots.pin()

    def _prepare_snapshot_write(self) -> None:
        """Freeze pinned readers before a mutation the per-triple hooks
        would see too late (constraint changes mutate the schema before
        any triple lands)."""
        if self._snapshots is not None:
            self._snapshots.prepare_write()

    # ------------------------------------------------------------------
    # Cache wiring

    def attach_cache(self, cache) -> None:
        """Attach a :class:`~repro.cache.cache.QueryCache`: restores the
        persisted epochs (monotonically) and subscribes it to live
        mutations."""
        self.cache = cache
        cache.restore_epochs(self.data_epoch, self.schema_epoch)
        cache.watch_store(self.store)

    def __repr__(self) -> str:
        return "DurableStore(%r, <%d triples, segment %d, %d logged>)" % (
            self.directory,
            self.store.triple_count,
            self.segment,
            self.records_logged,
        )
