"""Atomic checkpoints: a consistent snapshot of the whole store state.

A checkpoint file is a one-line header plus a JSON body::

    REPRO-CHECKPOINT v1 crc32=<8 hex> length=<bytes>\\n
    {...body...}

The header's CRC and length make torn or bit-rotted checkpoints
detectable without trusting any of the body; publication is
write-temp → fsync → atomic rename → fsync(dir), so a crash at any
byte leaves either the previous checkpoint or the new one — never a
half-written file that recovery would have to guess about.

The body snapshots everything a restarted process needs:

* the dictionary's term table in id order (ids are dense and
  first-seen, so re-encoding in order reproduces them exactly);
* the encoded triple table (statistics are re-derived from it on
  load, which makes them equal a fresh ``from_graph`` build by
  construction — the cost model's guard);
* the closed schema's direct constraints (triple form);
* optionally the incremental saturator's (explicit, support-count)
  state, so restart skips re-saturation;
* the cache's data/schema epochs;
* the WAL position (segment, offset) the snapshot corresponds to —
  recovery replays only the WAL suffix past it.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, Optional, Tuple

from ..rdf.io import ParseError, parse_line, parse_term
from ..saturation.incremental import IncrementalSaturator
from ..schema.constraints import Constraint
from ..schema.schema import Schema
from ..storage.store import TripleStore

HEADER_PREFIX = "REPRO-CHECKPOINT v1"

#: Current body format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


class CheckpointCorrupt(ValueError):
    """A checkpoint file failed validation (torn, bit-rot, or not a
    checkpoint at all).  Recovery falls back to the previous one."""


def encode_checkpoint(body: Dict) -> bytes:
    """Serialize a checkpoint body with its self-validating header."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = "%s crc32=%08x length=%d\n" % (
        HEADER_PREFIX, zlib.crc32(payload), len(payload))
    return header.encode("ascii") + payload


def decode_checkpoint(data: bytes) -> Dict:
    """Validate and parse a checkpoint file; raises
    :class:`CheckpointCorrupt` on any mismatch."""
    newline = data.find(b"\n")
    if newline < 0:
        raise CheckpointCorrupt("missing checkpoint header")
    try:
        header = data[:newline].decode("ascii")
    except UnicodeDecodeError:
        raise CheckpointCorrupt("undecodable checkpoint header")
    parts = header.split()
    if (
        len(parts) != 4
        or " ".join(parts[:2]) != HEADER_PREFIX
        or not parts[2].startswith("crc32=")
        or not parts[3].startswith("length=")
    ):
        raise CheckpointCorrupt("malformed checkpoint header %r" % header[:60])
    try:
        checksum = int(parts[2][len("crc32="):], 16)
        length = int(parts[3][len("length="):])
    except ValueError:
        raise CheckpointCorrupt("malformed checkpoint header %r" % header[:60])
    payload = data[newline + 1:]
    if len(payload) != length:
        raise CheckpointCorrupt(
            "checkpoint body is %d bytes, header promises %d"
            % (len(payload), length))
    if zlib.crc32(payload) != checksum:
        raise CheckpointCorrupt("checkpoint body CRC mismatch")
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorrupt("checkpoint body is not JSON: %s" % exc)
    if body.get("format") != FORMAT_VERSION:
        raise CheckpointCorrupt(
            "unsupported checkpoint format %r" % body.get("format"))
    return body


# ---------------------------------------------------------------------------
# Snapshot ↔ objects


def build_snapshot(
    store: TripleStore,
    saturator: Optional[IncrementalSaturator],
    sequence: int,
    wal_segment: int,
    wal_offset: int,
    data_epoch: int,
    schema_epoch: int,
) -> Dict:
    """Capture the full state as a JSON-serializable body."""
    terms, triples = store.encoded_state()
    body: Dict = {
        "format": FORMAT_VERSION,
        "sequence": sequence,
        "wal_segment": wal_segment,
        "wal_offset": wal_offset,
        # Hole ids (reserved by the hierarchy encoder, not yet
        # assigned a term) serialize as the empty string — no term
        # renders as "" so the marker is unambiguous.
        "terms": ["" if term is None else term.n3() for term in terms],
        "triples": [list(encoded) for encoded in triples],
        "schema": sorted(
            constraint.to_triple().n3()
            for constraint in store.schema.direct_constraints()
        ),
        "epochs": {"data": data_epoch, "schema": schema_epoch},
        "statistics": store.statistics.summary(),
    }
    if saturator is not None:
        explicit, support = saturator.export_state()
        body["saturation"] = {
            "schema": sorted(
                constraint.to_triple().n3()
                for constraint in saturator.schema().direct_constraints()
            ),
            "explicit": sorted(triple.n3() for triple in explicit),
            "support": sorted(
                (triple.n3(), count) for triple, count in support.items()
            ),
        }
    return body


def restore_snapshot(
    body: Dict,
) -> Tuple[TripleStore, Optional[IncrementalSaturator]]:
    """Rebuild (store, saturator) from a validated checkpoint body.

    Structural surprises inside a CRC-valid body (a term that does not
    parse, a triple id out of range) are promoted to
    :class:`CheckpointCorrupt` so recovery falls back instead of
    crashing half-initialized.
    """
    try:
        terms = [
            None if token == "" else parse_term(token)
            for token in body["terms"]
        ]
        triples = [tuple(row) for row in body["triples"]]
        schema = Schema(
            Constraint.from_triple(parse_line(line)) for line in body["schema"]
        )
        store = TripleStore.from_encoded(terms, triples, schema)
        summary = body.get("statistics")
        if summary:
            # Only the exactly-maintained fields: the global distinct
            # subject/object sets are documented upper bounds under
            # deletion, so a live snapshot may legitimately exceed the
            # rebuilt store there.
            rebuilt = store.statistics.summary()
            for field in ("triples", "properties", "classes"):
                if field in summary and rebuilt[field] != summary[field]:
                    raise CheckpointCorrupt(
                        "restored statistics disagree with snapshot on "
                        "%s: %r != %r" % (field, rebuilt[field], summary[field]))
        saturator = None
        saturation = body.get("saturation")
        if saturation is not None:
            sat_schema = Schema(
                Constraint.from_triple(parse_line(line))
                for line in saturation["schema"]
            )
            saturator = IncrementalSaturator.from_state(
                sat_schema,
                (parse_line(line) for line in saturation["explicit"]),
                {
                    parse_line(line): count
                    for line, count in saturation["support"]
                },
            )
        return store, saturator
    except CheckpointCorrupt:
        raise
    except (KeyError, TypeError, ValueError, IndexError, ParseError) as exc:
        raise CheckpointCorrupt("checkpoint body is inconsistent: %s" % exc)
