"""The public query answering facade.

One object, every technique from the paper:

* ``Strategy.SAT``        — saturate once, evaluate queries directly;
* ``Strategy.REF_UCQ``    — classical CQ-to-UCQ reformulation;
* ``Strategy.REF_SCQ``    — the semi-conjunctive reformulation of [15];
* ``Strategy.REF_JUCQ``   — a JUCQ from a caller-chosen cover (the
  demo's "user-chosen cover with the help of our GUI");
* ``Strategy.REF_GCOV``   — the cost-based cover of the greedy search;
* ``Strategy.DATALOG``    — the Dat encoding run bottom-up;
* ``Strategy.REF_VIRTUOSO`` / ``Strategy.REF_ALLEGRO`` — the simulated
  incomplete fixed strategies of the commercial platforms.

Every call returns an :class:`AnswerReport` carrying the answer, wall
time, and strategy-specific diagnostics (reformulation sizes, the
chosen cover, estimated costs, intermediate result sizes) — the data
behind the demo's inspection panels.
"""

from __future__ import annotations

import enum
import time
from typing import Dict, FrozenSet, Optional, Tuple

from ..cache import QueryCache, dataset_token
from ..datalog.encoding import answer_query as datalog_answer
from ..encoding.hierarchy import HierarchyInterval, preencode_hierarchy
from ..optimizer.gcov import gcov
from ..parallel.pool import ExecutorPool, pool_for
from ..query.algebra import ConjunctiveQuery
from ..query.cover import Cover
from ..rdf.graph import Graph
from ..rdf.terms import Term
from ..reformulation.engine import ReformulationTooLarge, reformulate, ucq_size
from ..reformulation.jucq import jucq_for_cover, scq_reformulation
from ..reformulation.policy import (
    ALLEGROGRAPH_STYLE,
    COMPLETE,
    ReformulationPolicy,
    VIRTUOSO_STYLE,
)
from ..resilience.budget import ExecutionBudget
from ..resilience.errors import BudgetExceeded
from ..resilience.report import CompletenessReport, DEGRADED
from ..schema.schema import Schema
from ..storage.backends import BackendProfile, HASH_BACKEND, QueryTooLargeError
from ..storage.executor import ExecutionResult, Executor
from ..storage.sql import SqliteBackend
from ..storage.store import TripleStore

Answer = FrozenSet[Tuple[Term, ...]]

#: Engines the answerer accepts. ``"builtin"`` is the historical alias
#: of the materialized interpreter; ``"pipelined"`` runs the same plans
#: through the batch executor of :mod:`repro.engine.pipeline`;
#: ``"columnar"`` through the vectorized executor of
#: :mod:`repro.columnar.engine`.
ANSWERER_ENGINES = ("builtin", "materialized", "pipelined", "columnar", "sqlite")


class Strategy(enum.Enum):
    """The query answering techniques the demo compares."""

    SAT = "sat"
    REF_UCQ = "ref-ucq"
    REF_SCQ = "ref-scq"
    REF_JUCQ = "ref-jucq"
    REF_GCOV = "ref-gcov"
    DATALOG = "datalog"
    REF_VIRTUOSO = "ref-virtuoso"
    REF_ALLEGRO = "ref-allegrograph"


#: Strategies guaranteed to compute the complete answer.
COMPLETE_STRATEGIES = frozenset(
    {
        Strategy.SAT,
        Strategy.REF_UCQ,
        Strategy.REF_SCQ,
        Strategy.REF_JUCQ,
        Strategy.REF_GCOV,
        Strategy.DATALOG,
    }
)


class AnswerReport:
    """An answer plus how it was obtained."""

    def __init__(
        self,
        strategy: Strategy,
        answer: Answer,
        elapsed_seconds: float,
        details: Optional[Dict] = None,
        execution: Optional[ExecutionResult] = None,
    ):
        self.strategy = strategy
        self.answer = answer
        self.elapsed_seconds = elapsed_seconds
        self.details = details or {}
        self.execution = execution

    @property
    def cardinality(self) -> int:
        return len(self.answer)

    @property
    def diagnostics(self) -> Dict:
        """Strategy-specific diagnostics; when the answerer carries a
        cache this includes a ``"cache"`` entry with the hit/miss
        outcome of this call and a counter snapshot."""
        return self.details

    def __repr__(self) -> str:
        return "AnswerReport(%s, %d rows, %.1f ms)" % (
            self.strategy.value,
            self.cardinality,
            self.elapsed_seconds * 1000.0,
        )


class QueryAnswerer:
    """Answers conjunctive queries over one dataset with any strategy.

    >>> from repro.datasets import books_dataset
    >>> graph, schema, query = books_dataset()
    >>> answerer = QueryAnswerer(graph, schema)
    >>> sorted(answerer.answer(query, Strategy.SAT).answer)[0][0].value
    'J. L. Borges'
    """

    def __init__(
        self,
        graph: Graph,
        schema: Optional[Schema] = None,
        backend: BackendProfile = HASH_BACKEND,
        policy: ReformulationPolicy = COMPLETE,
        engine: str = "builtin",
        cache: Optional[QueryCache] = None,
        interval_encoding: bool = False,
    ):
        """``engine`` selects the evaluation engine for the relational
        strategies: ``"materialized"`` (the instrumented operator-at-a-
        time executor; ``"builtin"`` is its historical alias and the
        default), ``"pipelined"`` (the batch-streaming executor of
        :mod:`repro.engine.pipeline`, with per-operator metrics and
        mid-pipeline budget enforcement), ``"columnar"`` (the
        vectorized executor of :mod:`repro.columnar.engine` over
        sorted integer-run indexes — same metrics and budget
        semantics), or ``"sqlite"`` (generated SQL on a real RDBMS —
        answers are identical, per the test-suite, but plan metrics
        are the engine's own and not reported).

        ``cache`` (opt-in) amortizes repeated answering: reformulations
        and answers are served from a :class:`~repro.cache.QueryCache`
        and invalidated through the live-update hooks — see
        :mod:`repro.cache.cache`.  One cache may be shared by several
        answerers.

        ``interval_encoding`` (opt-in) dictionary-encodes the schema's
        class and property hierarchies *before* the data, so every
        covered subtree occupies one contiguous id interval; the
        reformulation strategies then collapse subclass/subproperty
        unions into single interval atoms executed as range scans —
        see :mod:`repro.encoding.hierarchy`.  Answers are identical to
        the classic unions (uncovered nodes keep them); only plan
        shape and speed change."""
        if engine not in ANSWERER_ENGINES:
            raise ValueError("unknown engine %r" % (engine,))
        self.graph = graph
        merged = Schema.from_graph(graph)
        if schema is not None:
            for constraint in schema.direct_constraints():
                merged.add(constraint)
        self.schema = merged
        self.backend = backend
        self.policy = policy
        self.engine = engine
        # The executor-level engine name: "builtin" is the alias kept
        # for callers predating the pipelined engine.
        self._exec_engine = (
            engine if engine in ("pipelined", "columnar") else "materialized"
        )
        self.interval_encoding = interval_encoding
        if interval_encoding:
            # Hierarchy ids must be assigned before any data term grabs
            # one, so the store is built empty, pre-encoded from the
            # merged schema, and only then loaded.
            store = TripleStore()
            self.encoding = preencode_hierarchy(store, merged)
            store.load(graph, merged)
            self.store = store
        else:
            self.encoding = None
            self.store = TripleStore.from_graph(graph, merged)
        self._encoding_token = (
            None if self.encoding is None else self.encoding.token()
        )
        self.executor = Executor(self.store, backend)
        self._sql_backend: Optional[SqliteBackend] = None
        self._saturated_sql_backend: Optional[SqliteBackend] = None
        self._saturated_store: Optional[TripleStore] = None
        self._saturator = None
        self._saturation_seconds: Optional[float] = None
        self.cache = cache
        self._dataset_token: Optional[int] = None
        if cache is not None:
            self._dataset_token = dataset_token()
            # Invalidation hook: every mutation of the logical graph
            # (the answerer's own insert/delete included) bumps the
            # cache's epochs — schema triples purge reformulations,
            # data triples retire answers only.
            cache.watch_graph(self.graph)

    def _evaluate(self, query, saturated: bool = False, budget=None, pool=None):
        """Run a relational query on the selected engine; returns
        (answer, execution-or-None).  ``budget`` (in-process engines
        only) bounds the evaluation's intermediate results — see
        :class:`~repro.resilience.budget.ExecutionBudget`.  ``pool``
        fans fragment/disjunct subplans out to the shared worker pool
        (in-process engines only; validated by :meth:`answer`)."""
        if self.engine == "sqlite":
            if budget is not None:
                raise ValueError(
                    "execution budgets require the builtin engine; the "
                    "sqlite engine evaluates inside the RDBMS"
                )
            if saturated:
                if self._saturated_sql_backend is None:
                    self._saturated_sql_backend = SqliteBackend(
                        self.saturated_store()
                    )
                return self._saturated_sql_backend.run(query), None
            if self._sql_backend is None:
                self._sql_backend = SqliteBackend(self.store)
            return self._sql_backend.run(query), None
        executor = (
            Executor(self.saturated_store(), self.backend)
            if saturated
            else self.executor
        )
        execution = executor.run(
            query, budget=budget, engine=self._exec_engine, pool=pool
        )
        return execution.answer(), execution

    # ------------------------------------------------------------------
    # Data updates (live maintenance, the E7 machinery behind a facade)

    def insert(self, triple) -> bool:
        """Insert one data triple; every strategy sees it immediately.

        The base store is extended in place; the saturated store (when
        already built) is maintained incrementally through the support-
        counting saturator, not rebuilt.  Returns False when the triple
        was already present.
        """
        if triple in self.graph:
            return False
        self.graph.add(triple)
        self.store.insert(triple)
        self._sql_backend = None
        if self._saturator is not None:
            for added in self._saturator.insert(triple):
                self._saturated_store.insert(added)
            self._saturated_sql_backend = None
        return True

    def delete(self, triple) -> bool:
        """Delete one data triple everywhere; returns False if absent."""
        if triple not in self.graph:
            return False
        self.graph.discard(triple)
        self.store.delete(triple)
        self._sql_backend = None
        if self._saturator is not None:
            for removed in self._saturator.delete(triple):
                self._saturated_store.delete(removed)
            self._saturated_sql_backend = None
        return True

    # ------------------------------------------------------------------
    # Saturation management

    def saturated_store(self) -> TripleStore:
        """The store over ``G∞``, built (and timed) on first use and
        maintained incrementally by :meth:`insert`/:meth:`delete`."""
        if self._saturated_store is None:
            from ..saturation.incremental import IncrementalSaturator

            start = time.perf_counter()
            saturator = IncrementalSaturator(
                self.schema, self.graph.data_triples()
            )
            store = TripleStore.from_graph(saturator.saturated(), self.schema)
            self._saturation_seconds = time.perf_counter() - start
            self._saturator = saturator
            self._saturated_store = store
        return self._saturated_store

    @property
    def saturation_seconds(self) -> Optional[float]:
        """Time spent saturating (None until Sat is first used)."""
        return self._saturation_seconds

    # ------------------------------------------------------------------
    # Caching plumbing

    def _cached_reformulation(self, kind, query, policy, compute, extra=None):
        """Serve *compute*'s result from the cache's reformulation tier
        when possible; returns (value, hit) with hit None when no cache
        is configured.  Goes through the cache's single-flight gate, so
        concurrent misses on one key (answerers sharing a cache across
        threads) run *compute* once, not once per thread."""
        if self.cache is None:
            return compute(), None
        if self._encoding_token is not None:
            # Interval-encoded reformulations mention encoding-specific
            # ids; never trade them with classic (or differently
            # encoded) entries.
            extra = (extra, self._encoding_token)
        key = self.cache.reformulation_key(kind, query, self.schema, policy, extra)
        return self.cache.get_or_compute("reformulation", key, compute)

    def _interval_stats(self, reformulation) -> Optional[Dict]:
        """How much the hierarchy encoding collapsed in a materialized
        reformulation: interval atoms emitted, and the union branches
        they replaced (summed).  None without interval encoding."""
        if self.encoding is None:
            return None
        from ..query.algebra import JoinOfUnions

        unions = (
            reformulation.fragments
            if isinstance(reformulation, JoinOfUnions)
            else (reformulation,)
        )
        atoms = 0
        collapsed = 0
        for union in unions:
            for disjunct in union.disjuncts:
                for atom in disjunct.atoms:
                    for term in atom.as_tuple():
                        if isinstance(term, HierarchyInterval):
                            atoms += 1
                            collapsed += max(0, term.branches - 1)
        return {"interval_atoms": atoms, "branches_collapsed": collapsed}

    # ------------------------------------------------------------------

    def answer(
        self,
        query: ConjunctiveQuery,
        strategy: Strategy = Strategy.REF_GCOV,
        cover: Optional[Cover] = None,
        max_disjuncts: Optional[int] = None,
        row_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        budget_fallbacks: int = 3,
        allow_partial: bool = False,
        parallelism: Optional[int] = None,
        budget_owner: Optional[str] = None,
    ) -> AnswerReport:
        """Answer *query* with *strategy*.

        ``cover`` is required by ``REF_JUCQ`` and ignored elsewhere.
        ``max_disjuncts`` optionally caps UCQ materialization over the
        backend's own parse limit.  Raises
        :class:`~repro.reformulation.engine.ReformulationTooLarge` or
        :class:`~repro.storage.backends.QueryTooLargeError` when the
        strategy genuinely cannot run — the failure modes the paper
        demonstrates, surfaced rather than hidden.

        ``row_budget`` / ``time_budget`` (in-process engines only)
        bound the evaluation's cumulative intermediate rows and wall
        time; an overrun raises
        :class:`~repro.resilience.errors.BudgetExceeded` — with one
        escape hatch: for the cover strategies (``REF_SCQ``,
        ``REF_JUCQ``, ``REF_GCOV``) up to ``budget_fallbacks``
        cheaper-estimated covers from the greedy search are retried,
        each under a *fresh* budget, before giving up.  A budget-capped
        run that completes (directly or via fallback) still returns the
        complete answer — budgets never truncate, they only refuse.
        Budget-exceeded runs are never cached.

        ``allow_partial`` (pipelined and columnar engines) turns a
        final budget
        overrun into a *degraded* answer instead of an exception: the
        rows the pipeline had produced before the abort are decoded and
        returned, with ``details["partial"]`` set, the overrun
        diagnostics attached, and a
        :class:`~repro.resilience.report.CompletenessReport` marking
        the local evaluation ``DEGRADED``.  Partial answers are never
        cached.

        ``parallelism`` (in-process engines only) evaluates a JUCQ's
        fragments — and a UCQ's disjunct unions — concurrently on the
        process-wide worker pool; the answer is identical to the serial
        run (``None``/``1`` keeps the exact serial code path).  Budgets
        compose: all workers charge the same budget, so the row/time
        allowance is global, and an overrun cancels the sibling tasks.

        ``budget_owner`` (only meaningful with a budget) stamps the
        minted budgets, so every overrun — the primary and any
        sibling-abort copies raised by a parallel fan-out — carries the
        originating caller identity (the query service passes its
        ``tenant/request-id`` here).
        """
        if strategy is Strategy.REF_JUCQ and cover is None:
            raise ValueError("REF_JUCQ requires a cover")
        pool: Optional[ExecutorPool] = None
        if parallelism is not None:
            if parallelism < 1:
                raise ValueError(
                    "parallelism must be >= 1, got %r" % (parallelism,)
                )
            if parallelism > 1:
                if self.engine == "sqlite":
                    raise ValueError(
                        "parallel evaluation requires an in-process engine, "
                        "not %r" % (self.engine,)
                    )
                if strategy is Strategy.DATALOG:
                    raise ValueError(
                        "the DATALOG strategy does not support parallel "
                        "evaluation"
                    )
            pool = pool_for(parallelism)
        budget_factory = None
        if row_budget is not None or time_budget is not None:
            if self.engine == "sqlite":
                raise ValueError(
                    "execution budgets require an in-process engine, not %r"
                    % (self.engine,)
                )
            if strategy is Strategy.DATALOG:
                raise ValueError(
                    "the DATALOG strategy does not support execution budgets"
                )
            if budget_fallbacks < 0:
                raise ValueError("budget_fallbacks must be >= 0")
            # Validate eagerly (and once): the factory then mints a
            # fresh budget per evaluation attempt, so a fallback cover
            # gets the full allowance, not the failed attempt's dregs.
            # ``budget_owner`` stamps every minted budget, so overruns
            # (and their sibling-abort copies) stay attributable to the
            # caller — e.g. the query service's ``tenant/request-id``.
            ExecutionBudget(max_rows=row_budget, max_seconds=time_budget)

            def budget_factory():
                return ExecutionBudget(
                    max_rows=row_budget,
                    max_seconds=time_budget,
                    owner=budget_owner,
                )

        start = time.perf_counter()
        answer_key = None
        if self.cache is not None:
            answer_key = self.cache.answer_key(
                self._dataset_token,
                query,
                self.schema,
                self.policy,
                strategy.value,
                cover=cover if strategy is Strategy.REF_JUCQ else None,
                extra=(
                    self.engine,
                    self.backend.name,
                    max_disjuncts,
                    self._encoding_token,
                ),
            )
            cached = self.cache.lookup_answer(answer_key)
            if cached is not None:
                answer, details = cached
                details = dict(details)
                details["cache"] = {
                    "answer": "hit",
                    "reformulation": None,
                    "stats": self.cache.stats(),
                }
                details["parallelism"] = parallelism if parallelism else 1
                return AnswerReport(
                    strategy, answer, time.perf_counter() - start, details
                )
        try:
            report = self._answer_uncached(
                query,
                strategy,
                cover,
                max_disjuncts,
                start,
                budget_factory,
                budget_fallbacks,
                pool,
            )
        except BudgetExceeded as exc:
            partial = self._partial_report(strategy, exc, start, allow_partial)
            if partial is None:
                raise
            return partial  # degraded answers are never cached
        if self.cache is not None:
            reformulation_hit = report.details.pop("_reformulation_cache", None)
            self.cache.store_answer(answer_key, (report.answer, dict(report.details)))
            report.details["cache"] = {
                "answer": "miss",
                "reformulation": (
                    None
                    if reformulation_hit is None
                    else ("hit" if reformulation_hit else "miss")
                ),
                "stats": self.cache.stats(),
            }
        else:
            report.details.pop("_reformulation_cache", None)
        # Recorded after the cache store: the answer is parallelism-
        # independent, so the cached entry must not be either.
        report.details["parallelism"] = parallelism if parallelism else 1
        return report

    def _partial_report(
        self,
        strategy: Strategy,
        exc: BudgetExceeded,
        start: float,
        allow_partial: bool,
    ) -> Optional[AnswerReport]:
        """Build the degraded :class:`AnswerReport` for a budget
        overrun, or None when the caller did not opt in (or the engine
        produced no partial rows — the materialized interpreter aborts
        whole operators, so only the pipelined and columnar engines
        carry them)."""
        if not allow_partial:
            return None
        partial_answer = getattr(exc, "partial_answer", None)
        if partial_answer is None:
            return None
        completeness = CompletenessReport(["local"])
        entry = completeness["local"]
        entry.note_status(DEGRADED)
        entry.note_error(exc)
        entry.rows = len(partial_answer)
        entry.elapsed_seconds = time.perf_counter() - start
        completeness.elapsed_seconds = entry.elapsed_seconds
        details = {
            "partial": True,
            "budget_exceeded": exc.diagnostics(),
            "completeness": completeness.as_dict(),
        }
        return AnswerReport(
            strategy,
            frozenset(partial_answer),
            time.perf_counter() - start,
            details,
        )

    def _fallback_evaluate(
        self,
        jucq,
        query: ConjunctiveQuery,
        budget_factory,
        fallbacks: int,
        details: Dict,
        exclude_repr: Optional[str],
        pool: Optional[ExecutorPool] = None,
    ):
        """Evaluate *jucq* under a fresh budget; on
        :class:`~repro.resilience.errors.BudgetExceeded`, retry up to
        *fallbacks* next-best covers from the greedy search (cheapest
        estimated cost first, the failed cover excluded), each under a
        fresh budget.  Exhausting the fallbacks re-raises the original
        overrun — with every attempt's cover recorded in *details* so
        the caller can see what was tried."""
        try:
            return self._evaluate(jucq, budget=budget_factory(), pool=pool)
        except BudgetExceeded as primary:
            if fallbacks <= 0:
                raise
            details["budget_exceeded"] = primary.diagnostics()
            search = gcov(
                query,
                self.schema,
                self.store,
                self.backend,
                self.policy,
                encoding=self.encoding,
            )
            ranked = sorted(search.explored, key=lambda pair: pair[1])
            excluded = {exclude_repr} if exclude_repr is not None else set()
            failed: list = []
            for candidate, _cost in ranked:
                shown = repr(candidate)
                if shown in excluded:
                    continue
                excluded.add(shown)
                candidate_jucq = jucq_for_cover(
                    candidate, self.schema, self.policy,
                    encoding=self.encoding,
                )
                try:
                    answer, execution = self._evaluate(
                        candidate_jucq, budget=budget_factory(), pool=pool
                    )
                except BudgetExceeded:
                    failed.append(shown)
                    if len(failed) >= fallbacks:
                        break
                    continue
                details["budget_fallback_cover"] = shown
                details["budget_fallback_attempts"] = len(failed) + 1
                if failed:
                    details["budget_fallback_failed"] = failed
                return answer, execution
            details["budget_fallback_failed"] = failed
            raise primary

    def _answer_uncached(
        self,
        query: ConjunctiveQuery,
        strategy: Strategy,
        cover: Optional[Cover],
        max_disjuncts: Optional[int],
        start: float,
        budget_factory=None,
        budget_fallbacks: int = 0,
        pool: Optional[ExecutorPool] = None,
    ) -> AnswerReport:
        def budget():
            return None if budget_factory is None else budget_factory()

        if strategy == Strategy.SAT:
            answer, execution = self._evaluate(
                query, saturated=True, budget=budget(), pool=pool
            )
            elapsed = time.perf_counter() - start
            return AnswerReport(
                strategy,
                answer,
                elapsed,
                {"saturation_seconds": self._saturation_seconds},
                execution,
            )

        if strategy == Strategy.DATALOG:
            answer = datalog_answer(self.graph, self.schema, query)
            return AnswerReport(
                strategy, answer, time.perf_counter() - start
            )

        if strategy in (Strategy.REF_UCQ, Strategy.REF_VIRTUOSO, Strategy.REF_ALLEGRO):
            policy = {
                Strategy.REF_UCQ: self.policy,
                Strategy.REF_VIRTUOSO: VIRTUOSO_STYLE,
                Strategy.REF_ALLEGRO: ALLEGROGRAPH_STYLE,
            }[strategy]
            size, _ = self._cached_reformulation(
                "ucq-size",
                query,
                policy,
                lambda: ucq_size(query, self.schema, policy, self.encoding),
            )
            # A UCQ of n disjuncts over an α-atom query has ~n·α atoms;
            # refuse before materializing what the backend cannot parse.
            projected_atoms = size * len(query.atoms)
            if projected_atoms > self.backend.max_query_atoms:
                raise QueryTooLargeError(
                    projected_atoms, self.backend.max_query_atoms, self.backend.name
                )
            union, reformulation_hit = self._cached_reformulation(
                "ucq",
                query,
                policy,
                lambda: reformulate(
                    query,
                    self.schema,
                    policy,
                    max_disjuncts=max_disjuncts,
                    encoding=self.encoding,
                ),
                extra=max_disjuncts,
            )
            details = {
                "ucq_disjuncts": size,
                "policy": policy.name,
                "_reformulation_cache": reformulation_hit,
            }
            interval_stats = self._interval_stats(union)
            if interval_stats is not None:
                details["interval"] = interval_stats
            answer, execution = self._evaluate(union, budget=budget(), pool=pool)
            return AnswerReport(
                strategy,
                answer,
                time.perf_counter() - start,
                details,
                execution,
            )

        if strategy == Strategy.REF_SCQ:
            jucq, reformulation_hit = self._cached_reformulation(
                "scq",
                query,
                self.policy,
                lambda: scq_reformulation(
                    query, self.schema, self.policy, encoding=self.encoding
                ),
            )
            details = {
                "fragments": jucq.fragment_count(),
                "atom_count": jucq.atom_count(),
                "_reformulation_cache": reformulation_hit,
            }
            interval_stats = self._interval_stats(jucq)
            if interval_stats is not None:
                details["interval"] = interval_stats
            if budget_factory is None:
                answer, execution = self._evaluate(jucq, pool=pool)
            else:
                # The SCQ *is* the per-atom cover's JUCQ: exclude it
                # from the fallback ranking, it just failed.
                answer, execution = self._fallback_evaluate(
                    jucq,
                    query,
                    budget_factory,
                    budget_fallbacks,
                    details,
                    repr(Cover.per_atom(query)),
                    pool,
                )
            return AnswerReport(
                strategy,
                answer,
                time.perf_counter() - start,
                details,
                execution,
            )

        if strategy == Strategy.REF_JUCQ:
            if cover is None:
                raise ValueError("REF_JUCQ requires a cover")
            from ..cache.keys import cover_key

            jucq, reformulation_hit = self._cached_reformulation(
                "jucq-cover",
                query,
                self.policy,
                lambda: jucq_for_cover(
                    cover, self.schema, self.policy, encoding=self.encoding
                ),
                extra=None if self.cache is None else cover_key(cover),
            )
            details = {
                "cover": repr(cover),
                "atom_count": jucq.atom_count(),
                "_reformulation_cache": reformulation_hit,
            }
            interval_stats = self._interval_stats(jucq)
            if interval_stats is not None:
                details["interval"] = interval_stats
            if budget_factory is None:
                answer, execution = self._evaluate(jucq, pool=pool)
            else:
                answer, execution = self._fallback_evaluate(
                    jucq,
                    query,
                    budget_factory,
                    budget_fallbacks,
                    details,
                    repr(cover),
                    pool,
                )
            return AnswerReport(
                strategy,
                answer,
                time.perf_counter() - start,
                details,
                execution,
            )

        if strategy == Strategy.REF_GCOV:
            # The cover choice is cost-based, hence data-dependent: the
            # entry carries the dataset token so answerers sharing one
            # cache never trade covers tuned to each other's data.
            def run_gcov():
                search = gcov(
                    query,
                    self.schema,
                    self.store,
                    self.backend,
                    self.policy,
                    encoding=self.encoding,
                )
                jucq = jucq_for_cover(
                    search.cover,
                    self.schema,
                    self.policy,
                    encoding=self.encoding,
                )
                return (
                    jucq,
                    {
                        "cover": repr(search.cover),
                        "estimated_cost": search.cost,
                        "explored_covers": search.explored_count,
                    },
                )

            (jucq, gcov_details), reformulation_hit = self._cached_reformulation(
                "gcov",
                query,
                self.policy,
                run_gcov,
                extra=(self._dataset_token, self.backend.name),
            )
            details = dict(gcov_details)
            details["_reformulation_cache"] = reformulation_hit
            interval_stats = self._interval_stats(jucq)
            if interval_stats is not None:
                details["interval"] = interval_stats
            if budget_factory is None:
                answer, execution = self._evaluate(jucq, pool=pool)
            else:
                answer, execution = self._fallback_evaluate(
                    jucq,
                    query,
                    budget_factory,
                    budget_fallbacks,
                    details,
                    details.get("cover"),
                    pool,
                )
            return AnswerReport(
                strategy,
                answer,
                time.perf_counter() - start,
                details,
                execution,
            )

        raise ValueError("unknown strategy %r" % (strategy,))

    # ------------------------------------------------------------------

    def answer_all(
        self,
        query: ConjunctiveQuery,
        strategies: Optional[Tuple[Strategy, ...]] = None,
        cover: Optional[Cover] = None,
    ) -> Dict[Strategy, AnswerReport]:
        """Run several strategies on *query*, skipping the ones that
        legitimately fail (too-large reformulations) — the demo's
        "answer it through all the available systems" button.

        ``REF_JUCQ`` participates only when a *cover* is supplied (it
        has no default cover by definition).
        """
        if strategies is None:
            strategies = tuple(Strategy)
        reports: Dict[Strategy, AnswerReport] = {}
        for strategy in strategies:
            if strategy is Strategy.REF_JUCQ and cover is None:
                continue
            try:
                reports[strategy] = self.answer(query, strategy, cover=cover)
            except (ReformulationTooLarge, QueryTooLargeError):
                continue
        return reports
