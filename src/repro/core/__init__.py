"""Public facade: strategies and the query answerer (S11)."""

from .answerer import (
    Answer,
    AnswerReport,
    COMPLETE_STRATEGIES,
    QueryAnswerer,
    Strategy,
)

__all__ = [
    "Answer",
    "AnswerReport",
    "COMPLETE_STRATEGIES",
    "QueryAnswerer",
    "Strategy",
]
