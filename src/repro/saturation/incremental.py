"""Incremental maintenance of a saturated graph.

Section 1 of the paper: *"the saturation needs to be maintained after
changes in the data and/or constraints, which may incur a performance
penalty"* — the penalty Ref avoids.  This module implements that
maintenance so experiment E7 can measure it.

Given the closed schema, every instance-level derivation bottoms out in
exactly one explicit data triple (each instance rule has one instance
premise; the other premises come from the schema closure).  The
saturation is therefore a forest rooted at explicit triples, and exact
deletion support reduces to *support counting*: for each entailed
triple, count how many explicit triples derive it.  Insertions add the
new triple's consequence set and bump counts; deletions decrement and
evict triples whose count reaches zero (unless they are explicit
themselves).

Constraint (schema) changes invalidate the counts wholesale, so they
trigger full resaturation — exactly the cost the paper attributes to
Sat under schema updates.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema
from .engine import instance_consequences


def full_consequences(triple: Triple, schema: Schema) -> Set[Triple]:
    """All instance triples transitively entailed by *triple* alone
    (together with the closed *schema*), excluding *triple* itself."""
    derived: Set[Triple] = set()
    worklist: List[Triple] = [triple]
    while worklist:
        current = worklist.pop()
        for consequence in instance_consequences(current, schema):
            if consequence != triple and consequence not in derived:
                derived.add(consequence)
                worklist.append(consequence)
    return derived


class IncrementalSaturator:
    """A saturated graph maintained under data insertions and deletions.

    >>> from repro.rdf import Namespace, RDF_TYPE, Triple
    >>> from repro.schema import Constraint, Schema
    >>> EX = Namespace("http://example.org/")
    >>> schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
    >>> sat = IncrementalSaturator(schema)
    >>> delta = sat.insert(Triple(EX.ann, RDF_TYPE, EX.Manager))
    >>> Triple(EX.ann, RDF_TYPE, EX.Employee) in sat.saturated()
    True
    >>> removed = sat.delete(Triple(EX.ann, RDF_TYPE, EX.Manager))
    >>> len(sat.saturated())  # only the schema constraint remains
    1
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        data: Optional[Iterable[Triple]] = None,
    ):
        self._schema = schema.copy() if schema is not None else Schema()
        self._explicit: Set[Triple] = set()
        self._support: Dict[Triple, int] = Counter()
        self._saturated = Graph()
        self._saturated.add_all(self._schema.entailed_triples())
        self._listeners = []
        if data is not None:
            self.insert_all(data)

    def add_listener(self, callback) -> None:
        """Register ``callback(subject, operation)`` invoked after every
        successful mutation: ``(triple, "insert"|"delete")`` for data,
        ``(constraint, "constraint-add"|"constraint-remove")`` for
        schema changes — the cache subsystem distinguishes the two."""
        self._listeners.append(callback)

    def _notify(self, subject, operation: str) -> None:
        for callback in self._listeners:
            callback(subject, operation)

    # ------------------------------------------------------------------
    # Checkpoint support

    def export_state(self) -> Tuple[Set[Triple], Dict[Triple, int]]:
        """The incremental-saturation state a checkpoint must persist:
        (explicit triples, support counts).  Together with the schema
        these reconstruct the saturated view without re-deriving any
        consequences — restart does not pay the re-saturation penalty
        the paper attributes to Sat."""
        return set(self._explicit), dict(self._support)

    @classmethod
    def from_state(
        cls,
        schema: Schema,
        explicit: Iterable[Triple],
        support: Dict[Triple, int],
    ) -> "IncrementalSaturator":
        """Rebuild a saturator from :meth:`export_state` output."""
        saturator = cls(schema)
        saturator._explicit = set(explicit)
        saturator._support = Counter(support)
        saturator._saturated.add_all(saturator._explicit)
        saturator._saturated.add_all(
            triple for triple, count in support.items() if count > 0
        )
        return saturator

    # ------------------------------------------------------------------
    # Views

    def saturated(self) -> Graph:
        """The maintained saturation (live view; do not mutate)."""
        return self._saturated

    def explicit_triples(self) -> Set[Triple]:
        return set(self._explicit)

    def schema(self) -> Schema:
        return self._schema.copy()

    @property
    def derived_count(self) -> int:
        """How many triples in the saturation are entailed-only."""
        return sum(
            1
            for triple, count in self._support.items()
            if count > 0 and triple not in self._explicit
        )

    # ------------------------------------------------------------------
    # Data updates

    def insert(self, triple: Triple) -> List[Triple]:
        """Add one explicit data triple and its consequences.

        Returns the triples that became part of the saturation (the
        delta) — callers maintaining downstream stores apply it
        directly."""
        if triple.is_schema_triple():
            raise ValueError(
                "schema triples must go through add_constraint, got %r" % (triple,)
            )
        if triple in self._explicit:
            return []
        added: List[Triple] = []
        self._explicit.add(triple)
        if self._saturated.add(triple):
            added.append(triple)
        for consequence in full_consequences(triple, self._schema):
            self._support[consequence] += 1
            if self._saturated.add(consequence):
                added.append(consequence)
        if self._listeners:
            self._notify(triple, "insert")
        return added

    def insert_all(self, triples: Iterable[Triple]) -> None:
        for triple in triples:
            self.insert(triple)

    def delete(self, triple: Triple) -> List[Triple]:
        """Remove one explicit data triple; evict unsupported
        entailments.  Returns the triples that left the saturation."""
        if triple not in self._explicit:
            return []
        removed: List[Triple] = []
        self._explicit.discard(triple)
        for consequence in full_consequences(triple, self._schema):
            remaining = self._support[consequence] - 1
            if remaining > 0:
                self._support[consequence] = remaining
            else:
                del self._support[consequence]
                if consequence not in self._explicit:
                    if self._saturated.discard(consequence):
                        removed.append(consequence)
        if triple not in self._support:
            if self._saturated.discard(triple):
                removed.append(triple)
        if self._listeners:
            self._notify(triple, "delete")
        return removed

    def delete_all(self, triples: Iterable[Triple]) -> None:
        for triple in triples:
            self.delete(triple)

    # ------------------------------------------------------------------
    # Schema updates (full recomputation — the Sat maintenance penalty)

    def add_constraint(self, constraint: Constraint) -> None:
        if self._schema.add(constraint):
            self._resaturate()
            if self._listeners:
                self._notify(constraint, "constraint-add")

    def remove_constraint(self, constraint: Constraint) -> None:
        if self._schema.remove(constraint):
            self._resaturate()
            if self._listeners:
                self._notify(constraint, "constraint-remove")

    def _resaturate(self) -> None:
        self._support = Counter()
        self._saturated = Graph()
        self._saturated.add_all(self._schema.entailed_triples())
        explicit = self._explicit
        self._explicit = set()
        # Re-inserting explicit triples is internal churn, not a data
        # change: the constraint event alone reaches the listeners.
        listeners, self._listeners = self._listeners, []
        try:
            for triple in explicit:
                self.insert(triple)
        finally:
            self._listeners = listeners

    def __len__(self) -> int:
        return len(self._saturated)
