"""Derivation provenance: *why* a triple is entailed.

The demo lets attendees compare techniques and inspect results; a
natural question at the booth is "where did this answer come from?".
:func:`explain_triple` answers it for entailed triples: it returns a
derivation tree whose leaves are explicit triples and whose internal
nodes name the immediate-entailment rule applied (the rules of
:mod:`repro.saturation.rules`), rendered by :func:`format_derivation`
as an indented proof.

The search works backward over the same closed-schema consequence
relation the fast saturator uses forward, so anything the saturator
derives is explainable (tested against saturation on random graphs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import BlankNode, URI
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema


class Derivation:
    """A proof tree: this triple, the rule, and the premises."""

    def __init__(
        self,
        triple: Triple,
        rule: str,
        premises: Sequence["Derivation"] = (),
        constraint: Optional[Constraint] = None,
    ):
        self.triple = triple
        self.rule = rule
        self.premises = list(premises)
        self.constraint = constraint

    def is_explicit(self) -> bool:
        return self.rule == "explicit"

    def depth(self) -> int:
        if not self.premises:
            return 0
        return 1 + max(premise.depth() for premise in self.premises)

    def __repr__(self) -> str:
        return "Derivation(%r via %s)" % (self.triple, self.rule)


def explain_triple(
    triple: Triple,
    graph: Graph,
    schema: Optional[Schema] = None,
    max_depth: int = 12,
) -> Optional[Derivation]:
    """A derivation of *triple* from *graph* (plus *schema*), or None
    when the triple is not entailed.

    Returns a shallow derivation when several exist (breadth of the
    backward search is bounded by the instance rules' shapes); depth is
    capped by ``max_depth`` against pathological chains.
    """
    combined = Schema.from_graph(graph)
    if schema is not None:
        for constraint in schema.direct_constraints():
            combined.add(constraint)
    return _explain(triple, graph, combined, max_depth, set())


def _explain(
    triple: Triple,
    graph: Graph,
    schema: Schema,
    budget: int,
    visiting: Set[Triple],
) -> Optional[Derivation]:
    if triple in graph:
        return Derivation(triple, "explicit")
    if budget <= 0 or triple in visiting:
        return None
    visiting = visiting | {triple}

    # Entailed schema triples come straight from the closure.
    if triple.is_schema_triple():
        try:
            constraint = Constraint.from_triple(triple)
        except ValueError:
            return None
        if constraint in schema.entailed_constraints():
            return Derivation(triple, "schema-closure", constraint=constraint)
        return None

    s, p, o = triple.as_tuple()

    if p == RDF_TYPE:
        # type propagation: (s τ c'), c' ⊑ c.
        for sub in schema.subclasses(o):
            premise = _explain(
                Triple(s, RDF_TYPE, sub), graph, schema, budget - 1, visiting
            )
            if premise is not None:
                return Derivation(
                    triple,
                    "type-propagation",
                    [premise],
                    Constraint.subclass(sub, o),
                )
        # domain typing: (s q x), domain(q) ∋ o.
        for candidate in graph.match(subject=s):
            if candidate.is_schema_triple() or candidate.property == RDF_TYPE:
                continue
            if o in schema.domains(candidate.property):
                return Derivation(
                    triple,
                    "domain-typing",
                    [Derivation(candidate, "explicit")],
                    Constraint.domain(candidate.property, o),
                )
        # range typing: (x q s), range(q) ∋ o.
        if isinstance(s, (URI, BlankNode)):
            for candidate in graph.match(object=s):
                if candidate.is_schema_triple() or candidate.property == RDF_TYPE:
                    continue
                if o in schema.ranges(candidate.property):
                    return Derivation(
                        triple,
                        "range-typing",
                        [Derivation(candidate, "explicit")],
                        Constraint.range(candidate.property, o),
                    )
        # τ-subproperty: (s q o) with q ⊑ rdf:type.
        for type_sub in schema.subproperties(RDF_TYPE):
            premise = _explain(
                Triple(s, type_sub, o), graph, schema, budget - 1, visiting
            )
            if premise is not None:
                return Derivation(
                    triple,
                    "type-subproperty",
                    [premise],
                    Constraint.subproperty(type_sub, RDF_TYPE),
                )
        return None

    # property propagation: (s q o), q ⊏ p.
    for sub in schema.subproperties(p):
        if sub == RDF_TYPE:
            continue
        premise = _explain(Triple(s, sub, o), graph, schema, budget - 1, visiting)
        if premise is not None:
            return Derivation(
                triple,
                "property-propagation",
                [premise],
                Constraint.subproperty(sub, p),
            )
    return None


def format_derivation(derivation: Derivation, indent: int = 0) -> str:
    """Render a derivation as an indented proof.

    >>> # print(format_derivation(explain_triple(t, graph)))
    """
    pad = "  " * indent
    if derivation.is_explicit():
        line = "%s%r   [explicit]" % (pad, derivation.triple)
    else:
        constraint = (
            "  using %r" % derivation.constraint if derivation.constraint else ""
        )
        line = "%s%r   [%s%s]" % (pad, derivation.triple, derivation.rule, constraint)
    lines = [line]
    for premise in derivation.premises:
        lines.append(format_derivation(premise, indent + 1))
    return "\n".join(lines)
