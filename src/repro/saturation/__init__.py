"""Saturation-based query answering: Sat (S3)."""

from .engine import (
    instance_consequences,
    is_saturated,
    saturate,
    saturate_naive,
    saturation_of,
)
from .incremental import IncrementalSaturator, full_consequences
from .provenance import Derivation, explain_triple, format_derivation
from .rules import (
    RESERVED_VOCABULARY,
    all_immediate_consequences,
    immediate_consequences,
    is_admissible_constraint,
)

__all__ = [
    "Derivation",
    "IncrementalSaturator",
    "RESERVED_VOCABULARY",
    "all_immediate_consequences",
    "explain_triple",
    "format_derivation",
    "full_consequences",
    "immediate_consequences",
    "instance_consequences",
    "is_admissible_constraint",
    "is_saturated",
    "saturate",
    "saturate_naive",
    "saturation_of",
]
