"""The immediate entailment rules of the DB fragment (``⊢iRDF``).

Section 3 of the paper: a triple is entailed by a graph when a sequence
of *immediate entailment* rule applications derives it.  For the DB
fragment (RDFS entailment, unrestricted graphs) the rules are the
RDFS rules over the four constraints of Figure 1:

Schema-level rules
  * ``(a ⊑sc b), (b ⊑sc c)   ⊢ (a ⊑sc c)``        (subclass transitivity)
  * ``(p ⊑sp q), (q ⊑sp r)   ⊢ (p ⊑sp r)``        (subproperty transitivity)
  * ``(p ⊑sp q), (q ←d c)    ⊢ (p ←d c)``         (domain inheritance)
  * ``(p ⊑sp q), (q ←r c)    ⊢ (p ←r c)``         (range inheritance)
  * ``(p ←d c), (c ⊑sc c')   ⊢ (p ←d c')``        (domain widening)
  * ``(p ←r c), (c ⊑sc c')   ⊢ (p ←r c')``        (range widening)

Instance-level rules
  * ``(s τ c), (c ⊑sc c')    ⊢ (s τ c')``         (type propagation)
  * ``(s p o), (p ⊑sp q)     ⊢ (s q o)``          (property propagation)
  * ``(s p o), (p ←d c)      ⊢ (s τ c)``          (domain typing)
  * ``(s p o), (p ←r c)      ⊢ (o τ c)``          (range typing)

where ``τ`` abbreviates ``rdf:type``, ``⊑sc`` = ``rdfs:subClassOf``,
``⊑sp`` = ``rdfs:subPropertyOf``, ``←d`` = ``rdfs:domain`` and
``←r`` = ``rdfs:range``.

Range typing only fires when the object is a URI or blank node: a
literal cannot be a triple subject, so ``o τ c`` would be ill-formed.

The RDF/RDFS built-in vocabulary is *reserved*: constraints that try to
subsume the built-ins themselves (e.g. declaring ``rdfs:subClassOf`` a
subproperty of something, or a domain for ``rdf:type``) are ignored by
every engine in this library, consistently.  The DB fragment's intent
is that constraints relate user classes and properties; meta-level
constraints over the vocabulary have no agreed-upon semantics and real
systems ignore them too.  The single exception is ``rdf:type`` in
*superproperty* position (``p rdfs:subPropertyOf rdf:type``), which is
well-defined (triples of ``p`` entail type triples) and supported.

This module implements each rule as a function from a graph (and one
newly added triple) to the immediately entailed triples.  The naive
fixpoint engine in :mod:`repro.saturation.engine` applies them
directly; the fast engine uses the pre-closed :class:`repro.schema.Schema`
instead, and the test-suite checks both agree.
"""

from __future__ import annotations

from typing import Iterator, List

from ..rdf.graph import Graph
from ..rdf.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from ..rdf.terms import BlankNode, URI
from ..rdf.triples import Triple
from ..schema.constraints import RESERVED_VOCABULARY, is_admissible_constraint

__all__ = [
    "RESERVED_VOCABULARY",
    "all_immediate_consequences",
    "immediate_consequences",
    "is_admissible_constraint",
]


def immediate_consequences(graph: Graph, triple: Triple) -> Iterator[Triple]:
    """Yield every triple immediately entailed by *triple* joined with
    *graph* (which is assumed to already contain *triple*).

    This enumerates, for each rule, the instantiations in which
    *triple* plays either premise; the fixpoint engine therefore never
    misses a consequence regardless of insertion order.  Inadmissible
    constraints (see :func:`is_admissible_constraint`) produce nothing
    and are skipped when matched as the other premise.
    """
    s, p, o = triple.as_tuple()

    if triple.is_schema_triple() and not is_admissible_constraint(triple):
        return

    if p == RDFS_SUBCLASSOF:
        # transitivity, both roles
        for other in graph.match(subject=o, property=RDFS_SUBCLASSOF):
            if is_admissible_constraint(other):
                yield Triple(s, RDFS_SUBCLASSOF, other.object)
        for other in graph.match(property=RDFS_SUBCLASSOF, object=s):
            if is_admissible_constraint(other):
                yield Triple(other.subject, RDFS_SUBCLASSOF, o)
        # domain/range widening, second premise
        for other in graph.match(property=RDFS_DOMAIN, object=s):
            if is_admissible_constraint(other):
                yield Triple(other.subject, RDFS_DOMAIN, o)
        for other in graph.match(property=RDFS_RANGE, object=s):
            if is_admissible_constraint(other):
                yield Triple(other.subject, RDFS_RANGE, o)
        # type propagation, second premise
        for other in graph.match(property=RDF_TYPE, object=s):
            yield Triple(other.subject, RDF_TYPE, o)

    elif p == RDFS_SUBPROPERTYOF:
        # transitivity, both roles
        for other in graph.match(subject=o, property=RDFS_SUBPROPERTYOF):
            if is_admissible_constraint(other):
                yield Triple(s, RDFS_SUBPROPERTYOF, other.object)
        for other in graph.match(property=RDFS_SUBPROPERTYOF, object=s):
            if is_admissible_constraint(other):
                yield Triple(other.subject, RDFS_SUBPROPERTYOF, o)
        # domain/range inheritance, first premise
        for other in graph.match(subject=o, property=RDFS_DOMAIN):
            if is_admissible_constraint(other):
                yield Triple(s, RDFS_DOMAIN, other.object)
        for other in graph.match(subject=o, property=RDFS_RANGE):
            if is_admissible_constraint(other):
                yield Triple(s, RDFS_RANGE, other.object)
        # property propagation, second premise: (x s y) entails (x o y)
        if isinstance(s, URI):
            for other in graph.match(property=s):
                yield Triple(other.subject, o, other.object)

    elif p == RDFS_DOMAIN:
        # widening, first premise
        for other in graph.match(subject=o, property=RDFS_SUBCLASSOF):
            if is_admissible_constraint(other):
                yield Triple(s, RDFS_DOMAIN, other.object)
        # inheritance, second premise
        for other in graph.match(property=RDFS_SUBPROPERTYOF, object=s):
            if is_admissible_constraint(other):
                yield Triple(other.subject, RDFS_DOMAIN, o)
        # domain typing, second premise: (x s y) entails (x τ o)
        if isinstance(s, URI):
            for other in graph.match(property=s):
                yield Triple(other.subject, RDF_TYPE, o)

    elif p == RDFS_RANGE:
        for other in graph.match(subject=o, property=RDFS_SUBCLASSOF):
            if is_admissible_constraint(other):
                yield Triple(s, RDFS_RANGE, other.object)
        for other in graph.match(property=RDFS_SUBPROPERTYOF, object=s):
            if is_admissible_constraint(other):
                yield Triple(other.subject, RDFS_RANGE, o)
        # range typing, second premise: (x s y) entails (y τ o)
        if isinstance(s, URI):
            for other in graph.match(property=s):
                if isinstance(other.object, (URI, BlankNode)):
                    yield Triple(other.object, RDF_TYPE, o)

    elif p == RDF_TYPE:
        # type propagation, first premise
        for other in graph.match(subject=o, property=RDFS_SUBCLASSOF):
            if is_admissible_constraint(other):
                yield Triple(s, RDF_TYPE, other.object)

    else:
        # A plain data triple (s p o): property propagation, domain and
        # range typing, all with the data triple as first premise.
        for other in graph.match(subject=p, property=RDFS_SUBPROPERTYOF):
            if is_admissible_constraint(other):
                yield Triple(s, other.object, o)
        for other in graph.match(subject=p, property=RDFS_DOMAIN):
            if is_admissible_constraint(other):
                yield Triple(s, RDF_TYPE, other.object)
        for other in graph.match(subject=p, property=RDFS_RANGE):
            if is_admissible_constraint(other):
                if isinstance(o, (URI, BlankNode)):
                    yield Triple(o, RDF_TYPE, other.object)


def all_immediate_consequences(graph: Graph) -> List[Triple]:
    """One parallel step of ``⊢iRDF``: every consequence of *graph* not
    yet present in it."""
    fresh: List[Triple] = []
    seen = set()
    for triple in graph:
        for consequence in immediate_consequences(graph, triple):
            if consequence not in graph and consequence not in seen:
                seen.add(consequence)
                fresh.append(consequence)
    return fresh
