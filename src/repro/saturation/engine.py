"""Saturation-based query answering support (Sat).

Saturation computes ``G∞``, the fixpoint of the immediate entailment
rules over a graph ``G`` (paper, Section 3).  Two engines:

* :func:`saturate` — the production engine.  It first closes the
  schema component (cheap: schemas are small), then propagates
  instance-level consequences with a worklist.  Because the closed
  schema already contains every entailed constraint, each data triple's
  consequences can be read off directly, and the worklist only chains
  in the rare ``rdf:type``-as-superproperty cases.

* :func:`saturate_naive` — a direct fixpoint of the immediate rules of
  :mod:`repro.saturation.rules`.  Quadratic-ish and only suitable for
  small graphs; it exists as an executable specification that the fast
  engine is differentially tested against.

Both return a *new* graph; the input is never mutated.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..parallel.pool import ExecutorPool
from ..rdf.graph import Graph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import BlankNode, URI
from ..rdf.triples import Triple
from ..schema.schema import Schema
from .rules import all_immediate_consequences


def saturate_naive(graph: Graph, max_rounds: Optional[int] = None) -> Graph:
    """Saturate by repeatedly applying every immediate entailment rule.

    This is the executable form of the paper's definition: ``G∞`` is
    the fixpoint of ``⊢iRDF`` over ``G``.  ``max_rounds`` bounds the
    number of parallel rule-application rounds (None = run to fixpoint;
    termination is guaranteed because every derived triple is built
    from values already in the graph).
    """
    saturated = graph.copy()
    rounds = 0
    while True:
        fresh = all_immediate_consequences(saturated)
        if not fresh:
            return saturated
        saturated.add_all(fresh)
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            return saturated


def instance_consequences(triple: Triple, schema: Schema) -> List[Triple]:
    """The instance-level triples immediately entailed by *triple*
    given the *closed* schema.

    For a data triple ``(s p o)``: property propagation into every
    superproperty of ``p``, domain/range typing for every entailed
    domain/range of ``p``.  For a type triple ``(s τ c)``: propagation
    into every superclass of ``c``.  Schema triples have no instance
    consequences of their own (the schema closure covers them).
    """
    consequences: List[Triple] = []
    s, p, o = triple.as_tuple()
    if p == RDF_TYPE:
        for sup in schema.superclasses(o):
            consequences.append(Triple(s, RDF_TYPE, sup))
    elif not triple.is_schema_triple():
        for sup in schema.superproperties(p):
            consequences.append(Triple(s, sup, o))
        for klass in schema.domains(p):
            consequences.append(Triple(s, RDF_TYPE, klass))
        if isinstance(o, (URI, BlankNode)):
            for klass in schema.ranges(p):
                consequences.append(Triple(o, RDF_TYPE, klass))
    return consequences


def saturate(
    graph: Graph,
    schema: Optional[Schema] = None,
    pool: Optional[ExecutorPool] = None,
) -> Graph:
    """Compute ``G∞`` efficiently; return a new graph.

    When *schema* is given, it is used **in addition to** the schema
    triples present in *graph* (the common split in the paper: data in
    the store, constraints known separately).  The result contains the
    explicit triples, the entailed schema constraints, and every
    entailed instance triple.

    ``pool`` switches to round-based propagation: each round partitions
    the frontier into contiguous chunks, derives every chunk's
    consequences on a worker (pure reads — the schema closure is warmed
    before fan-out), and merges serially into the graph; freshly added
    triples form the next frontier.  Round-based BFS and the serial
    worklist reach the same fixpoint — saturation is confluent.
    """
    combined_schema = Schema.from_graph(graph)
    if schema is not None:
        for constraint in schema.direct_constraints():
            combined_schema.add(constraint)

    saturated = graph.copy()
    saturated.add_all(combined_schema.entailed_triples())

    frontier: List[Triple] = [t for t in graph if not t.is_schema_triple()]
    if pool is not None and pool.usable():
        return _saturate_rounds(saturated, frontier, combined_schema, pool)
    while frontier:
        triple = frontier.pop()
        for consequence in instance_consequences(triple, combined_schema):
            if saturated.add(consequence):
                # Chaining is only possible when a derived triple can
                # itself fire a rule — e.g. a type triple derived via an
                # rdf:type superproperty whose class has superclasses.
                frontier.append(consequence)
    return saturated


def _chunk_consequences(chunk: List[Triple], schema: Schema) -> List[Triple]:
    """One worker's share of a propagation round."""
    derived: List[Triple] = []
    for triple in chunk:
        derived.extend(instance_consequences(triple, schema))
    return derived


def _saturate_rounds(
    saturated: Graph,
    frontier: List[Triple],
    schema: Schema,
    pool: ExecutorPool,
) -> Graph:
    """Parallel saturation: chunked frontiers, serial merge per round."""
    while frontier:
        size = (len(frontier) + pool.workers - 1) // pool.workers
        chunks = [
            frontier[start:start + size]
            for start in range(0, len(frontier), size)
        ]
        if len(chunks) > 1:
            batches = pool.map(
                lambda chunk: _chunk_consequences(chunk, schema), chunks
            )
        else:
            batches = [_chunk_consequences(chunks[0], schema)]
        frontier = []
        for batch in batches:
            for consequence in batch:
                if saturated.add(consequence):
                    frontier.append(consequence)
    return saturated


def saturation_of(
    data: Iterable[Triple], schema: Schema
) -> Graph:
    """Convenience wrapper: saturate loose data triples under *schema*."""
    return saturate(Graph(data), schema)


def is_saturated(graph: Graph, schema: Optional[Schema] = None) -> bool:
    """True when saturating *graph* adds nothing (``G = G∞``)."""
    return len(saturate(graph, schema)) == len(graph)
