"""Retry with exponential backoff and full jitter.

The policy is deliberately boring — capped exponential growth, full
jitter drawn from a *seeded* generator, an attempt cap — and fully
injected: the clock that sleeps and the RNG that jitters are both
owned by the policy instance, so a test constructs
``RetryPolicy(seed=7)`` with a :class:`~repro.resilience.clock.FakeClock`
and replays the exact same backoff schedule every run.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple, Type

from .clock import Clock, Deadline, SYSTEM_CLOCK
from .errors import TransientEndpointError


class RetryPolicy:
    """Exponential backoff with full jitter (AWS-style).

    The delay before retry *n* (1-based failure count) is drawn
    uniformly from ``[0, min(max_delay, base_delay * multiplier**(n-1))]``.
    ``max_attempts`` counts total tries, so ``max_attempts=1`` disables
    retrying while keeping the call-shape uniform.

    >>> policy = RetryPolicy(max_attempts=4, base_delay=1.0, seed=1)
    >>> all(0 <= policy.backoff(n) <= 2 ** (n - 1) for n in (1, 2, 3))
    True
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %r" % (max_attempts,))
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1, got %r" % (multiplier,))
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.seed = seed
        self._rng = random.Random(seed)

    def backoff(self, failures: int) -> float:
        """The jittered delay after the *failures*-th consecutive failure."""
        ceiling = min(
            self.max_delay, self.base_delay * self.multiplier ** (failures - 1)
        )
        return self._rng.uniform(0.0, ceiling)

    def run(
        self,
        attempt: Callable[[], object],
        clock: Optional[Clock] = None,
        deadline: Optional[Deadline] = None,
        retryable: Tuple[Type[BaseException], ...] = (TransientEndpointError,),
    ) -> Tuple[object, int]:
        """Call *attempt* until it succeeds, a non-retryable exception
        escapes, the attempt cap is reached, or the deadline leaves no
        room to back off.  Returns ``(result, attempts_used)``; on
        exhaustion the last retryable exception is re-raised.
        """
        clock = clock if clock is not None else SYSTEM_CLOCK
        for attempts in range(1, self.max_attempts + 1):
            try:
                return attempt(), attempts
            except retryable:
                if attempts == self.max_attempts:
                    raise
                delay = self.backoff(attempts)
                if deadline is not None and deadline.remaining() <= delay:
                    # Sleeping through the deadline cannot help; fail
                    # now with the genuine cause.
                    raise
                clock.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def __repr__(self) -> str:
        return "RetryPolicy(attempts=%d, base=%.3fs, cap=%.3fs, seed=%d)" % (
            self.max_attempts,
            self.base_delay,
            self.max_delay,
            self.seed,
        )
