"""The failure vocabulary of the resilience layer.

Every fault the federation can survive is a typed exception defined
here, so policy code (retry, breakers, degradation) dispatches on
types rather than string-matching messages.  The module is dependency-
free on purpose: it is imported by the storage executor, the reference
evaluator, the federation client and the chaos harness without
creating cycles.
"""

from __future__ import annotations

from typing import Optional


class EndpointFailure(RuntimeError):
    """Base class for request-level endpoint failures.

    ``endpoint_name`` identifies the source that failed (when known) so
    completeness reports can attribute the degradation.
    """

    def __init__(self, message: str, endpoint_name: Optional[str] = None):
        super().__init__(message)
        self.endpoint_name = endpoint_name


class TransientEndpointError(EndpointFailure):
    """A failure worth retrying: the request may succeed if re-sent
    (connection reset, 5xx, momentary overload)."""


class EndpointOutage(EndpointFailure):
    """A permanent failure: the endpoint is gone for the rest of the
    run.  Retrying is pointless; the breaker should open instead."""


class DeadlineExceeded(RuntimeError):
    """A per-request deadline elapsed before a usable response arrived.

    Raised by the federation client around endpoint calls — either
    before an attempt (no time left to try) or after one (the response
    came back too late to be waited for honestly).
    """

    def __init__(self, message: str, elapsed_seconds: Optional[float] = None):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds


class SimulatedCrash(RuntimeError):
    """The injected process death of the durability chaos harness.

    Raised by :class:`~repro.resilience.faults.CrashingFileSystem` when
    its write budget runs out (mid-write — the torn-record case) or
    around a checkpoint rename.  ``bytes_written`` records how many
    bytes actually reached the wrapped filesystem, so tests can map the
    crash back to the operation prefix that must survive recovery.
    """

    def __init__(self, message: str, bytes_written: Optional[int] = None):
        super().__init__(message)
        self.bytes_written = bytes_written


class CircuitOpen(RuntimeError):
    """A request was refused locally because the endpoint's circuit
    breaker is open — the endpoint has failed enough times recently
    that sending more requests would only burn the request budget."""


class BudgetExceeded(RuntimeError):
    """A local evaluation outgrew its row or time budget.

    Carries partial diagnostics: what tripped (``"rows"`` or
    ``"time"``), how much had been produced, where in the plan, and the
    elapsed time — so callers can report *how far* evaluation got
    instead of presenting a bare failure.
    """

    def __init__(
        self,
        message: str,
        kind: str,
        rows_produced: int = 0,
        row_budget: Optional[int] = None,
        elapsed_seconds: Optional[float] = None,
        time_budget: Optional[float] = None,
        operator: Optional[str] = None,
        owner: Optional[str] = None,
    ):
        super().__init__(message)
        #: ``"rows"`` or ``"time"`` — which limit tripped.
        self.kind = kind
        self.rows_produced = rows_produced
        self.row_budget = row_budget
        self.elapsed_seconds = elapsed_seconds
        self.time_budget = time_budget
        #: The operator being evaluated when the budget tripped.
        self.operator = operator
        #: Who the tripped budget belonged to (e.g. the service layer's
        #: ``tenant/request-id``).  Sibling-abort copies carry the
        #: *originating* owner, so accounting layers attribute every
        #: abort of a fan-out to the request that genuinely overran.
        self.owner = owner
        #: Partial-execution snapshot attached by the executor: the
        #: per-node cardinalities of completed subtrees and, for
        #: pipelined runs, the operator metrics — a budget abort
        #: reports how far evaluation got, it does not erase it.
        self.partial: Optional[dict] = None
        #: Answer rows produced before the abort (pipelined runs only;
        #: every collected row is a genuine answer row, the set is just
        #: incomplete).  Encoded in whatever the execution context's
        #: row currency is.
        self.partial_rows: Optional[list] = None
        #: ``partial_rows`` decoded to terms, when the executor had the
        #: dictionary at hand.
        self.partial_answer = None

    def diagnostics(self) -> dict:
        """The structured payload, for reports and CLI rendering."""
        payload = {
            "kind": self.kind,
            "rows_produced": self.rows_produced,
            "row_budget": self.row_budget,
            "elapsed_seconds": self.elapsed_seconds,
            "time_budget": self.time_budget,
            "operator": self.operator,
        }
        if self.owner is not None:
            payload["owner"] = self.owner
        if getattr(self, "sibling_abort", False):
            payload["sibling_abort"] = True
        if self.partial is not None:
            payload["partial"] = self.partial
        if self.partial_rows is not None:
            payload["partial_row_count"] = len(self.partial_rows)
        return payload

    @property
    def details(self) -> dict:
        """Alias of :meth:`diagnostics` — the name accounting layers
        (e.g. the query service's shed/abort attribution) read."""
        return self.diagnostics()
