"""Completeness accounting for degraded federated answers.

The paper's federation is honest about truncation (a single bool).
Under the resilience layer an answer can additionally be *degraded*
(an endpoint failed past its retries or deadline) or computed with an
endpoint *skipped* entirely (open circuit).  A
:class:`CompletenessReport` replaces the single flag with per-endpoint
status, retry counts and elapsed budget — the contract the client,
CLI, benchmark and cache all share (degraded sub-answers are never
cached as complete).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: Per-endpoint terminal statuses, ordered by severity.
OK = "ok"
TRUNCATED = "truncated"
DEGRADED = "degraded"
SKIPPED_OPEN_CIRCUIT = "skipped-open-circuit"

_SEVERITY = {OK: 0, TRUNCATED: 1, DEGRADED: 2, SKIPPED_OPEN_CIRCUIT: 3}


class EndpointReport:
    """One endpoint's accounting across a single federated answer."""

    def __init__(self, name: str):
        self.name = name
        self.status = OK
        #: Requests actually sent (each retry attempt counts).
        self.requests = 0
        #: Attempts beyond the first, summed over this answer's atoms.
        self.retries = 0
        #: Rows this endpoint contributed (post-truncation, pre-dedup).
        self.rows = 0
        #: Sub-answers served from the cache instead of the network.
        self.cache_hits = 0
        #: Time attributed to this endpoint's calls (injected clock).
        self.elapsed_seconds = 0.0
        #: Messages of the failures observed (transient ones included).
        self.errors: List[str] = []

    def note_status(self, status: str) -> None:
        """Record an outcome; the endpoint keeps its *worst* status."""
        if _SEVERITY[status] > _SEVERITY[self.status]:
            self.status = status

    def note_error(self, error: BaseException) -> None:
        self.errors.append("%s: %s" % (type(error).__name__, error))

    @property
    def ok(self) -> bool:
        return self.status == OK

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "status": self.status,
            "requests": self.requests,
            "retries": self.retries,
            "rows": self.rows,
            "cache_hits": self.cache_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "errors": list(self.errors),
        }

    def __repr__(self) -> str:
        return "EndpointReport(%r, %s, %d requests, %d retries)" % (
            self.name,
            self.status,
            self.requests,
            self.retries,
        )


class CompletenessReport:
    """Per-endpoint status for one federated answer.

    ``complete`` holds exactly when every endpoint finished ``ok`` —
    then (and only then) the answer is certified complete over the
    union of sources.  Any truncated/degraded/skipped endpoint makes
    the answer a sound *subset* of the complete one.
    """

    def __init__(self, endpoint_names: Iterable[str]):
        self.endpoints: Dict[str, EndpointReport] = {
            name: EndpointReport(name) for name in endpoint_names
        }
        #: Total answering time for the whole federated call.
        self.elapsed_seconds = 0.0

    def __getitem__(self, name: str) -> EndpointReport:
        return self.endpoints[name]

    def __iter__(self):
        return iter(self.endpoints.values())

    @property
    def complete(self) -> bool:
        return all(entry.ok for entry in self)

    @property
    def truncated(self) -> bool:
        return any(entry.status == TRUNCATED for entry in self)

    def with_status(self, status: str) -> List[str]:
        return [entry.name for entry in self if entry.status == status]

    @property
    def degraded_endpoints(self) -> List[str]:
        return self.with_status(DEGRADED)

    @property
    def skipped_endpoints(self) -> List[str]:
        return self.with_status(SKIPPED_OPEN_CIRCUIT)

    def total_retries(self) -> int:
        return sum(entry.retries for entry in self)

    def as_dict(self) -> Dict:
        return {
            "complete": self.complete,
            "elapsed_seconds": self.elapsed_seconds,
            "endpoints": [entry.as_dict() for entry in self],
        }

    def summary(self) -> str:
        """A human-readable rendering, one endpoint per line."""
        lines = [
            "answer %s (%.1f ms)"
            % (
                "COMPLETE" if self.complete else "PARTIAL",
                self.elapsed_seconds * 1e3,
            )
        ]
        for entry in self:
            line = "  %-12s %-20s %d request(s), %d retr%s, %d row(s)" % (
                entry.name,
                entry.status,
                entry.requests,
                entry.retries,
                "y" if entry.retries == 1 else "ies",
                entry.rows,
            )
            if entry.errors:
                line += "  [last: %s]" % entry.errors[-1]
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "complete" if self.complete else (
            "partial: " + ",".join(
                "%s=%s" % (e.name, e.status) for e in self if not e.ok
            )
        )
        return "CompletenessReport(%s)" % status
