"""Per-endpoint circuit breakers.

A dead endpoint must not keep absorbing the federation's request
budget: after ``failure_threshold`` consecutive failures the breaker
*opens* and requests are refused locally (:class:`CircuitOpen`) until
``cooldown_seconds`` of injected time pass, after which a single probe
is allowed (*half-open*).  The probe's outcome decides: success closes
the circuit, failure re-opens it for another cooldown.
"""

from __future__ import annotations

from typing import Optional

from .clock import Clock, SYSTEM_CLOCK
from .errors import CircuitOpen

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """The classic closed → open → half-open state machine.

    >>> from repro.resilience.clock import FakeClock
    >>> clock = FakeClock()
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=10,
    ...                          clock=clock)
    >>> breaker.record_failure(); breaker.record_failure(); breaker.state
    'open'
    >>> clock.advance(10.0); breaker.state
    'half-open'
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Optional[Clock] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %r" % (failure_threshold,)
            )
        if cooldown_seconds < 0:
            raise ValueError(
                "cooldown_seconds must be >= 0, got %r" % (cooldown_seconds,)
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: Lifetime counters, for reports.
        self.times_opened = 0
        self.rejected_requests = 0

    @property
    def state(self) -> str:
        """The current state; an elapsed cooldown shows as half-open."""
        if self._state == OPEN and (
            self.clock.monotonic() - self._opened_at >= self.cooldown_seconds
        ):
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request be sent now?  Open circuits refuse (and count
        the refusal); a half-open circuit lets the probe through."""
        if self.state == OPEN:
            self.rejected_requests += 1
            return False
        return True

    def check(self, what: str = "endpoint") -> None:
        """:meth:`allow` as an exception, for call sites that prefer
        control flow by raising."""
        if not self.allow():
            raise CircuitOpen(
                "%s refused: circuit open after %d consecutive failures "
                "(cooldown %.1fs)"
                % (what, self._consecutive_failures, self.cooldown_seconds)
            )

    def cooldown_remaining(self) -> float:
        """Seconds until an open circuit goes half-open (0.0 when the
        circuit is not open — there is nothing to wait for)."""
        if self.state != OPEN:
            return 0.0
        elapsed = self.clock.monotonic() - self._opened_at
        return max(0.0, self.cooldown_seconds - elapsed)

    def as_dict(self) -> dict:
        """JSON-ready snapshot for health reports."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "cooldown_remaining": self.cooldown_remaining(),
            "times_opened": self.times_opened,
            "rejected_requests": self.rejected_requests,
        }

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = CLOSED
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: a fresh cooldown starts now.
            self._state = OPEN
            self._opened_at = self.clock.monotonic()
            self.times_opened += 1
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = OPEN
            self._opened_at = self.clock.monotonic()
            self.times_opened += 1

    def __repr__(self) -> str:
        return "CircuitBreaker(%s, failures=%d/%d)" % (
            self.state,
            self._consecutive_failures,
            self.failure_threshold,
        )
