"""Resilience: fault injection, retries, breakers, deadlines, budgets.

The production-readiness layer for the federated and local answering
paths (ROADMAP north star; motivated by the unreliable endpoints of
the paper's Section 1 and the bounded-cost concerns of LiteMat-style
systems):

* :mod:`~repro.resilience.errors` — the typed failure vocabulary;
* :mod:`~repro.resilience.clock` — injected time (``FakeClock`` makes
  every retry/cooldown/deadline test run instantly);
* :mod:`~repro.resilience.retry` — exponential backoff + full jitter;
* :mod:`~repro.resilience.breaker` — per-endpoint circuit breakers;
* :mod:`~repro.resilience.budget` — row/time budgets for local
  evaluation (``BudgetExceeded`` instead of an Example-1 hang);
* :mod:`~repro.resilience.report` — per-endpoint completeness
  accounting for graceful partial answers;
* :mod:`~repro.resilience.faults` — the seeded chaos harness
  (``FaultPlan`` + ``ChaosEndpoint`` for endpoints, ``CrashPlan`` +
  ``CrashingFileSystem`` for the durability layer), loaded lazily
  because it wraps :mod:`repro.federation` endpoints.
"""

from .breaker import CircuitBreaker
from .budget import ExecutionBudget
from .clock import Clock, Deadline, FakeClock, SYSTEM_CLOCK, SystemClock
from .errors import (
    BudgetExceeded,
    CircuitOpen,
    DeadlineExceeded,
    EndpointFailure,
    EndpointOutage,
    SimulatedCrash,
    TransientEndpointError,
)
from .report import CompletenessReport, EndpointReport
from .retry import RetryPolicy

__all__ = [
    "BudgetExceeded",
    "ChaosEndpoint",
    "CircuitBreaker",
    "CircuitOpen",
    "Clock",
    "CompletenessReport",
    "CrashPlan",
    "CrashingFileSystem",
    "Deadline",
    "DeadlineExceeded",
    "EndpointFailure",
    "EndpointOutage",
    "EndpointReport",
    "ExecutionBudget",
    "FakeClock",
    "FaultPlan",
    "RetryPolicy",
    "SYSTEM_CLOCK",
    "SimulatedCrash",
    "SystemClock",
    "TransientEndpointError",
]


def __getattr__(name):
    # The chaos harness wraps federation endpoints; importing it
    # eagerly would cycle (federation.client imports this package).
    if name in ("ChaosEndpoint", "FaultPlan", "CrashPlan", "CrashingFileSystem"):
        from . import faults

        return getattr(faults, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
