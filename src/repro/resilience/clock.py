"""Injected time: clocks and deadlines.

Every time-dependent resilience component (retry backoff, circuit
breaker cooldowns, deadlines, time budgets, injected latency) reads
time through a :class:`Clock` so tests and benchmarks substitute a
:class:`FakeClock` and run *instantly* — no wall-clock sleeps anywhere
in the test-suite, per the acceptance criteria.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from .errors import DeadlineExceeded


class Clock:
    """The time source interface: monotonic seconds plus sleep."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Real time; the production default."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A manually driven clock for tests and deterministic benchmarks.

    ``sleep`` advances simulated time instead of blocking, and every
    sleep is recorded — tests assert on the *schedule* of backoffs, not
    on elapsed wall time.  ``auto_advance`` (seconds per ``monotonic``
    call) simulates work taking time, which is how time budgets and
    deadlines are exercised without waiting.

    >>> clock = FakeClock()
    >>> clock.sleep(2.5); clock.monotonic()
    2.5
    >>> clock.sleeps
    [2.5]

    Thread-safe: parallel evaluation shares one clock between workers
    (e.g. chaos-endpoint latency under a fanned-out federation fetch),
    so the simulated-time mutations run under a lock.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0):
        self._now = start
        self.auto_advance = auto_advance
        self.sleeps: List[float] = []
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            self._now += self.auto_advance
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep %r seconds" % (seconds,))
        with self._lock:
            self._now += seconds
            self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        with self._lock:
            self._now += seconds


#: The process-wide default clock, used when none is injected.
SYSTEM_CLOCK = SystemClock()


class Deadline:
    """A fixed point in (injected) time by which work must finish.

    >>> clock = FakeClock()
    >>> deadline = Deadline(5.0, clock)
    >>> deadline.expired()
    False
    >>> clock.advance(6.0); deadline.expired()
    True
    """

    def __init__(self, seconds: float, clock: Optional[Clock] = None):
        if seconds <= 0:
            raise ValueError("a deadline needs a positive horizon, got %r"
                             % (seconds,))
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.seconds = seconds
        self.started_at = self.clock.monotonic()

    def elapsed(self) -> float:
        return self.clock.monotonic() - self.started_at

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` when the horizon has passed."""
        elapsed = self.elapsed()
        if elapsed >= self.seconds:
            raise DeadlineExceeded(
                "%s exceeded its %.3fs deadline (%.3fs elapsed)"
                % (what, self.seconds, elapsed),
                elapsed_seconds=elapsed,
            )
