"""Execution budgets: bounded-cost local evaluation.

The paper's Example 1 shows an SCQ evaluation drowning in intermediate
results (33M rows, 229 s).  An :class:`ExecutionBudget` turns that
failure mode from a hang into a structured
:class:`~repro.resilience.errors.BudgetExceeded` carrying partial
diagnostics: the executor and the reference evaluator charge every
materialized operator output against the budget (and probe it *inside*
join loops, so a single cross product cannot overshoot unboundedly).

A budget is single-use: it accumulates charges across one evaluation.
Callers that retry (e.g. the cover-fallback path of
:class:`~repro.core.answerer.QueryAnswerer`) construct a fresh budget
per attempt.

**Thread safety.**  One evaluation may fan fragments/disjuncts out to
the worker pool (:mod:`repro.parallel`), every worker charging this
same budget — the counters are therefore guarded by a lock, and the
budget remembers the first overrun as its *trip*: once any worker
raises :class:`~repro.resilience.errors.BudgetExceeded`, every sibling
worker's next charge/probe/check raises immediately (a copy marked
``sibling_abort=True``), which is what cancels in-flight sibling tasks
mid-stream.  The shared total is exactly the serial semantics: N
workers charging one budget can never jointly exceed what one thread
could.
"""

from __future__ import annotations

import threading
from typing import Optional

from .clock import Clock, SYSTEM_CLOCK
from .errors import BudgetExceeded

#: How many rows a join loop may produce between budget probes.
CHECK_INTERVAL = 1024


class ExecutionBudget:
    """A row- and/or time-budget for one evaluation.

    >>> budget = ExecutionBudget(max_rows=10)
    >>> budget.charge_rows(8, operator="Scan")
    >>> try:
    ...     budget.charge_rows(8, operator="Join")
    ... except BudgetExceeded as exc:
    ...     (exc.kind, exc.rows_produced, exc.operator)
    ('rows', 16, 'Join')
    >>> budget.tripped
    True
    """

    def __init__(
        self,
        max_rows: Optional[int] = None,
        max_seconds: Optional[float] = None,
        clock: Optional[Clock] = None,
        owner: Optional[str] = None,
    ):
        if max_rows is not None and max_rows < 1:
            raise ValueError("max_rows must be >= 1, got %r" % (max_rows,))
        if max_seconds is not None and max_seconds <= 0:
            raise ValueError("max_seconds must be > 0, got %r" % (max_seconds,))
        self.max_rows = max_rows
        self.max_seconds = max_seconds
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: Who this budget is charged to (e.g. ``"tenant-a/req-3"``).
        #: Every overrun — the primary *and* its sibling-abort copies —
        #: carries it, so fan-out aborts are attributed to the request
        #: that genuinely overran, never to an innocent sibling.
        self.owner = owner
        self.rows_charged = 0
        self._started_at: Optional[float] = None
        self._lock = threading.RLock()
        self._trip: Optional[BudgetExceeded] = None

    # ------------------------------------------------------------------

    @property
    def tripped(self) -> bool:
        """True once any charge has raised: the budget is spent, and
        every subsequent charge (from any thread) raises immediately."""
        return self._trip is not None

    def _sibling_abort(self) -> BudgetExceeded:
        """A fresh copy of the original overrun for a sibling worker —
        marked so fan-out error selection can prefer the primary."""
        trip = self._trip
        exc = BudgetExceeded(
            "aborted: %s" % (trip,),
            kind=trip.kind,
            rows_produced=trip.rows_produced,
            row_budget=trip.row_budget,
            elapsed_seconds=trip.elapsed_seconds,
            time_budget=trip.time_budget,
            operator=trip.operator,
            owner=trip.owner,
        )
        exc.sibling_abort = True
        return exc

    def start(self) -> None:
        """Anchor the time budget; implicit on the first charge/check."""
        with self._lock:
            if self._started_at is None:
                self._started_at = self.clock.monotonic()

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self.clock.monotonic() - self._started_at

    # ------------------------------------------------------------------

    def charge_rows(self, count: int, operator: Optional[str] = None) -> None:
        """Commit *count* materialized rows and enforce both limits."""
        with self._lock:
            if self._trip is not None:
                raise self._sibling_abort()
            self.start()
            self.rows_charged += count
            if self.max_rows is not None and self.rows_charged > self.max_rows:
                exc = BudgetExceeded(
                    "row budget exceeded at %s: %d rows produced (budget %d)"
                    % (operator or "?", self.rows_charged, self.max_rows),
                    kind="rows",
                    rows_produced=self.rows_charged,
                    row_budget=self.max_rows,
                    elapsed_seconds=self.elapsed(),
                    time_budget=self.max_seconds,
                    operator=operator,
                    owner=self.owner,
                )
                self._trip = exc
                raise exc
            self._check_time_locked(operator)

    def probe_rows(self, in_flight: int, operator: Optional[str] = None) -> None:
        """An *uncommitted* check from inside an operator loop: raise if
        the rows committed so far plus *in_flight* already bust the
        budget.  Keeps one runaway join from materializing far past the
        limit before its node-level charge."""
        with self._lock:
            if self._trip is not None:
                raise self._sibling_abort()
            self.start()
            if (
                self.max_rows is not None
                and self.rows_charged + in_flight > self.max_rows
            ):
                exc = BudgetExceeded(
                    "row budget exceeded inside %s: %d rows in flight over %d "
                    "already produced (budget %d)"
                    % (
                        operator or "?",
                        in_flight,
                        self.rows_charged,
                        self.max_rows,
                    ),
                    kind="rows",
                    rows_produced=self.rows_charged + in_flight,
                    row_budget=self.max_rows,
                    elapsed_seconds=self.elapsed(),
                    time_budget=self.max_seconds,
                    operator=operator,
                    owner=self.owner,
                )
                self._trip = exc
                raise exc
            self._check_time_locked(operator)

    def check_time(self, operator: Optional[str] = None) -> None:
        with self._lock:
            if self._trip is not None:
                raise self._sibling_abort()
            self.start()
            self._check_time_locked(operator)

    def _check_time_locked(self, operator: Optional[str]) -> None:
        if self.max_seconds is None:
            return
        elapsed = self.elapsed()
        if elapsed > self.max_seconds:
            exc = BudgetExceeded(
                "time budget exceeded at %s: %.3fs elapsed (budget %.3fs)"
                % (operator or "?", elapsed, self.max_seconds),
                kind="time",
                rows_produced=self.rows_charged,
                row_budget=self.max_rows,
                elapsed_seconds=elapsed,
                time_budget=self.max_seconds,
                operator=operator,
                owner=self.owner,
            )
            self._trip = exc
            raise exc

    def __repr__(self) -> str:
        return "ExecutionBudget(rows=%d/%s, time=%s%s)" % (
            self.rows_charged,
            self.max_rows if self.max_rows is not None else "∞",
            "%.3fs" % self.max_seconds if self.max_seconds is not None else "∞",
            ", TRIPPED" if self._trip is not None else "",
        )
