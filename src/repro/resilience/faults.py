"""Deterministic fault injection for federated endpoints.

A :class:`FaultPlan` is a *seeded* schedule of failures: every draw
comes from one ``random.Random(seed)`` consumed in request order, so a
(plan seed, request sequence) pair replays the identical faults in
every test, benchmark and CI run — chaos without flakiness.

A :class:`ChaosEndpoint` wraps any endpoint-shaped object and applies
the plan per request: added latency (charged to the injected clock, so
deadlines observe it), transient errors, a permanent outage from a
configured request index, and flaky truncation — which reuses the
*same* truncation code path as a real
:class:`~repro.federation.endpoint.Endpoint`, so injected truncation
cannot diverge from genuine truncation semantics.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..federation.endpoint import TruncatedResult, truncate_rows
from .clock import Clock, SYSTEM_CLOCK
from .errors import EndpointOutage, SimulatedCrash, TransientEndpointError


class FaultDecision:
    """What the plan injects into one request."""

    __slots__ = ("outage", "transient", "latency_seconds", "truncate_to")

    def __init__(
        self,
        outage: bool = False,
        transient: bool = False,
        latency_seconds: float = 0.0,
        truncate_to: Optional[int] = None,
    ):
        self.outage = outage
        self.transient = transient
        self.latency_seconds = latency_seconds
        self.truncate_to = truncate_to


class FaultPlan:
    """A seeded per-request fault schedule (see module doc).

    * ``transient_rate`` — probability a request fails retryably;
    * ``outage_after`` — requests served before the endpoint dies for
      good (``0`` = dead from the start, ``None`` = never);
    * ``latency_rate`` / ``latency_seconds`` — probability and size of
      injected delay (slept on the injected clock *before* the answer);
    * ``truncation_rate`` / ``truncation_limit`` — probability that a
      successful answer is flakily truncated to the limit.

    >>> plan = FaultPlan(seed=7, transient_rate=0.5)
    >>> first = [plan.decide().transient for _ in range(8)]
    >>> replay = FaultPlan(seed=7, transient_rate=0.5)
    >>> first == [replay.decide().transient for _ in range(8)]
    True
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        outage_after: Optional[int] = None,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.0,
        truncation_rate: float = 0.0,
        truncation_limit: Optional[int] = None,
    ):
        for name, rate in (
            ("transient_rate", transient_rate),
            ("latency_rate", latency_rate),
            ("truncation_rate", truncation_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be in [0, 1], got %r" % (name, rate))
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        if outage_after is not None and outage_after < 0:
            raise ValueError("outage_after must be >= 0 or None")
        if truncation_rate > 0 and truncation_limit is None:
            raise ValueError("truncation_rate needs a truncation_limit")
        self.seed = seed
        self.transient_rate = transient_rate
        self.outage_after = outage_after
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.truncation_rate = truncation_rate
        self.truncation_limit = truncation_limit
        self._rng = random.Random(seed)
        self.requests_seen = 0

    def decide(self) -> FaultDecision:
        """The faults for the next request.  Draws happen in a fixed
        order regardless of rates, so determinism survives config
        changes of unrelated fault axes."""
        index = self.requests_seen
        self.requests_seen += 1
        # One draw per axis, always consumed (order-stable determinism).
        transient_draw = self._rng.random()
        latency_draw = self._rng.random()
        truncation_draw = self._rng.random()
        if self.outage_after is not None and index >= self.outage_after:
            return FaultDecision(outage=True)
        latency = (
            self.latency_seconds
            if self.latency_rate > 0 and latency_draw < self.latency_rate
            else 0.0
        )
        if self.transient_rate > 0 and transient_draw < self.transient_rate:
            return FaultDecision(transient=True, latency_seconds=latency)
        truncate_to = (
            self.truncation_limit
            if self.truncation_rate > 0 and truncation_draw < self.truncation_rate
            else None
        )
        return FaultDecision(latency_seconds=latency, truncate_to=truncate_to)

    def __repr__(self) -> str:
        return (
            "FaultPlan(seed=%d, transient=%.2f, outage_after=%s, "
            "latency=%.2f@%.3fs, truncation=%.2f@%s)"
            % (
                self.seed,
                self.transient_rate,
                self.outage_after,
                self.latency_rate,
                self.latency_seconds,
                self.truncation_rate,
                self.truncation_limit,
            )
        )


class ReplicationFaultDecision:
    """What the plan injects into one shipped replication frame."""

    __slots__ = ("drop", "duplicate", "delay_rounds", "tear_at")

    def __init__(
        self,
        drop: bool = False,
        duplicate: bool = False,
        delay_rounds: int = 0,
        tear_at: Optional[int] = None,
    ):
        self.drop = drop
        self.duplicate = duplicate
        self.delay_rounds = delay_rounds
        #: When not None, only the first ``tear_at`` bytes of the frame
        #: reach the wire (a torn tail) and the stream cuts there.
        self.tear_at = tear_at


class ReplicationFaultPlan:
    """A seeded per-frame fault schedule for WAL shipping.

    Same determinism contract as :class:`FaultPlan`: every draw comes
    from one ``random.Random(seed)`` consumed in frame order, and the
    draws for every axis are always consumed, so a (seed, frame
    sequence) pair replays identically regardless of which rates are
    enabled.  Axes:

    * ``drop_rate`` — the frame never arrives (the follower sees a
      sequence gap and requests a resync);
    * ``duplicate_rate`` — the frame arrives twice (the follower must
      skip the replayed LSN);
    * ``delay_rate`` / ``delay_rounds`` — the frame is held back and
      delivered *after* later traffic (reordering; also surfaces as a
      gap at the follower);
    * ``tear_rate`` — only a prefix of the frame's bytes arrives and
      the stream cuts there (the torn-tail case ``decode_records``
      already truncates at).

    >>> plan = ReplicationFaultPlan(seed=5, drop_rate=0.5)
    >>> first = [plan.decide(80).drop for _ in range(8)]
    >>> replay = ReplicationFaultPlan(seed=5, drop_rate=0.5)
    >>> first == [replay.decide(80).drop for _ in range(8)]
    True
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_rounds: int = 1,
        tear_rate: float = 0.0,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
            ("tear_rate", tear_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be in [0, 1], got %r" % (name, rate))
        if delay_rounds < 1:
            raise ValueError("delay_rounds must be >= 1, got %r" % delay_rounds)
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.delay_rounds = delay_rounds
        self.tear_rate = tear_rate
        self._rng = random.Random(seed)
        self.frames_seen = 0

    def decide(self, frame_size: int) -> ReplicationFaultDecision:
        """The faults for the next frame of *frame_size* bytes.  One
        draw per axis, always consumed (order-stable determinism)."""
        self.frames_seen += 1
        drop_draw = self._rng.random()
        duplicate_draw = self._rng.random()
        delay_draw = self._rng.random()
        tear_draw = self._rng.random()
        # A torn frame keeps a non-empty strict prefix: an empty one is
        # a drop, a full one is intact (1-byte frames stay intact).
        tear_point = 1 + self._rng.randrange(max(1, frame_size - 1))
        if self.drop_rate > 0 and drop_draw < self.drop_rate:
            return ReplicationFaultDecision(drop=True)
        if self.tear_rate > 0 and tear_draw < self.tear_rate:
            return ReplicationFaultDecision(tear_at=tear_point)
        decision = ReplicationFaultDecision()
        if self.duplicate_rate > 0 and duplicate_draw < self.duplicate_rate:
            decision.duplicate = True
        if self.delay_rate > 0 and delay_draw < self.delay_rate:
            decision.delay_rounds = self.delay_rounds
        return decision

    def __repr__(self) -> str:
        return (
            "ReplicationFaultPlan(seed=%d, drop=%.2f, dup=%.2f, "
            "delay=%.2f@%d, tear=%.2f)"
            % (
                self.seed,
                self.drop_rate,
                self.duplicate_rate,
                self.delay_rate,
                self.delay_rounds,
                self.tear_rate,
            )
        )


class CrashPlan:
    """A seeded schedule of crash points for the durability harness.

    Like :class:`FaultPlan`, every draw comes from one
    ``random.Random(seed)``, so a seed replays the identical crash
    offsets in every run.  The harness crashes at every *operation
    boundary* it traced (the states a clean crash can land on) plus
    seeded *interior* bytes (torn records); :meth:`pick_offsets` merges
    the two.

    >>> plan = CrashPlan(seed=3)
    >>> offsets = plan.pick_offsets(100, boundaries=[0, 40, 100])
    >>> offsets == CrashPlan(seed=3).pick_offsets(100, boundaries=[0, 40, 100])
    True
    >>> set([0, 40, 100]) <= set(offsets)
    True
    """

    def __init__(self, seed: int = 0, interior_samples: int = 4):
        if interior_samples < 0:
            raise ValueError("interior_samples must be >= 0")
        self.seed = seed
        self.interior_samples = interior_samples
        self._rng = random.Random(seed)

    def pick_offsets(self, total_bytes, boundaries=()) -> list:
        """Byte offsets to crash at: the given boundaries (≤ total)
        plus ``interior_samples`` seeded draws in ``[0, total]``."""
        chosen = {offset for offset in boundaries if 0 <= offset <= total_bytes}
        for _ in range(self.interior_samples):
            if total_bytes > 0:
                chosen.add(self._rng.randrange(total_bytes + 1))
        return sorted(chosen)


class CrashingFileSystem:
    """A duck-typed durability filesystem that "dies" mid-operation.

    Wraps any object with the :class:`~repro.durability.io.FileSystem`
    surface.  Two crash axes:

    * ``write_budget`` — total bytes of ``append``/``write`` allowed;
      the write that would exceed it lands only its fitting *prefix*
      (a torn write, exactly what a dying process leaves behind) and
      raises :class:`~repro.resilience.errors.SimulatedCrash`;
    * ``crash_on_replace`` — ``"before"`` or ``"after"`` the
      ``replace_at``-th atomic rename (the checkpoint-publication
      windows).

    Once dead, every further call raises — the harness must build a
    fresh filesystem to "restart the process" and recover.
    """

    def __init__(
        self,
        inner,
        write_budget: Optional[int] = None,
        crash_on_replace: Optional[str] = None,
        replace_at: int = 0,
    ):
        if crash_on_replace not in (None, "before", "after"):
            raise ValueError(
                "crash_on_replace must be None, 'before' or 'after', got %r"
                % (crash_on_replace,))
        self.inner = inner
        self.write_budget = write_budget
        self.crash_on_replace = crash_on_replace
        self.replace_at = replace_at
        #: Bytes that actually reached the wrapped filesystem — the
        #: trace run reads this after each op to learn its boundary.
        self.bytes_written = 0
        self.dead = False
        self._replaces = 0

    # -- crash core ----------------------------------------------------

    def _check(self) -> None:
        if self.dead:
            raise SimulatedCrash(
                "process already crashed", bytes_written=self.bytes_written)

    def _die(self, why: str) -> None:
        self.dead = True
        # A dying process's descriptors are closed by the OS; anything
        # already pushed to the OS (our appends flush) survives.
        self.inner.close_all()
        raise SimulatedCrash(why, bytes_written=self.bytes_written)

    def _consume(self, path: str, data: bytes, writer) -> None:
        self._check()
        if self.write_budget is not None:
            remaining = self.write_budget - self.bytes_written
            if len(data) > remaining:
                if remaining > 0:
                    writer(path, data[:remaining])
                    self.bytes_written += remaining
                self._die("write budget exhausted at byte %d"
                          % self.bytes_written)
        writer(path, data)
        self.bytes_written += len(data)

    # -- wrapped surface -----------------------------------------------

    def append(self, path: str, data: bytes) -> None:
        self._consume(path, data, self.inner.append)

    def write(self, path: str, data: bytes) -> None:
        self._consume(path, data, self.inner.write)

    def sync(self, path: str) -> None:
        self._check()
        self.inner.sync(path)

    def sync_dir(self, path: str) -> None:
        self._check()
        self.inner.sync_dir(path)

    def replace(self, source: str, destination: str) -> None:
        self._check()
        index = self._replaces
        self._replaces += 1
        if self.crash_on_replace == "before" and index == self.replace_at:
            self._die("crashed before rename #%d" % index)
        self.inner.replace(source, destination)
        if self.crash_on_replace == "after" and index == self.replace_at:
            self._die("crashed after rename #%d" % index)

    def read(self, path: str) -> bytes:
        self._check()
        return self.inner.read(path)

    def exists(self, path: str) -> bool:
        self._check()
        return self.inner.exists(path)

    def size(self, path: str) -> int:
        self._check()
        return self.inner.size(path)

    def listdir(self, path: str):
        self._check()
        return self.inner.listdir(path)

    def makedirs(self, path: str) -> None:
        self._check()
        self.inner.makedirs(path)

    def remove(self, path: str) -> None:
        self._check()
        self.inner.remove(path)

    def truncate(self, path: str, size: int) -> None:
        self._check()
        self.inner.truncate(path, size)

    def close(self, path: str) -> None:
        self._check()
        self.inner.close(path)

    def close_all(self) -> None:
        self._check()
        self.inner.close_all()

    def __repr__(self) -> str:
        return "CrashingFileSystem(budget=%s, replace=%s@%d%s)" % (
            self.write_budget,
            self.crash_on_replace,
            self.replace_at,
            ", dead" if self.dead else "",
        )


class ChaosEndpoint:
    """An endpoint wrapper that injects the plan's faults per request.

    Mirrors the :class:`~repro.federation.endpoint.Endpoint` interface
    (``name``, ``triple_count``, ``evaluate``, ``export``, counters) so
    it drops into a :class:`~repro.federation.client.FederatedAnswerer`
    unchanged.  Its own counters record *attempts* — including the ones
    that failed before reaching the wrapped endpoint.
    """

    def __init__(self, endpoint, plan: FaultPlan, clock: Optional[Clock] = None):
        self.inner = endpoint
        self.plan = plan
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.requests_served = 0
        self.rows_returned = 0
        #: How often each fault class actually fired.
        self.faults_injected: Dict[str, int] = {
            "transient": 0,
            "outage": 0,
            "latency": 0,
            "truncation": 0,
        }

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def triple_count(self) -> int:
        return self.inner.triple_count

    @property
    def result_limit(self):
        return self.inner.result_limit

    def evaluate(self, query) -> TruncatedResult:
        self.requests_served += 1
        decision = self.plan.decide()
        if decision.latency_seconds > 0:
            self.faults_injected["latency"] += 1
            self.clock.sleep(decision.latency_seconds)
        if decision.outage:
            self.faults_injected["outage"] += 1
            raise EndpointOutage(
                "endpoint %r is down (permanent outage)" % (self.name,),
                endpoint_name=self.name,
            )
        if decision.transient:
            self.faults_injected["transient"] += 1
            raise TransientEndpointError(
                "endpoint %r failed transiently" % (self.name,),
                endpoint_name=self.name,
            )
        result = self.inner.evaluate(query)
        if decision.truncate_to is not None:
            rows, truncated = truncate_rows(result.rows, decision.truncate_to)
            if truncated:
                self.faults_injected["truncation"] += 1
            result = TruncatedResult(rows, truncated or result.truncated)
        self.rows_returned += len(result)
        return result

    def export(self):
        return self.inner.export()

    def reset_counters(self) -> None:
        self.requests_served = 0
        self.rows_returned = 0
        for key in self.faults_injected:
            self.faults_injected[key] = 0
        self.inner.reset_counters()

    def __repr__(self) -> str:
        return "ChaosEndpoint(%r, %r)" % (self.inner, self.plan)
